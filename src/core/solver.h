// Stage 2 driver: the optimal-explanation solver.
//
// Pipeline per Solve() call:
//   1. smart partitioning (Section 4) — or plain connected components
//      when batch_size is 0/large enough;
//   2. optional per-part component decomposition (lossless);
//   3. each sub-problem solved exactly: the faithful Section-3.2 MILP
//      encoding + branch & bound for component-sized models, the
//      structure-exploiting assignment branch & bound (exact_solver.h)
//      beyond that — both return the same optima (cross-checked in
//      tests);
//   4. merge, normalize, and score the explanation set with the
//      Section-3.1 probability model.

#ifndef EXPLAIN3D_CORE_SOLVER_H_
#define EXPLAIN3D_CORE_SOLVER_H_

#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/config.h"
#include "core/explanation.h"
#include "core/incumbents.h"
#include "core/partitioning.h"
#include "core/probability_model.h"
#include "matching/attribute_match.h"
#include "matching/tuple_mapping.h"
#include "provenance/canonical.h"

namespace explain3d {

/// Input of the optimal-explanation problem (EXP-3D, Problem 1).
struct Explain3DInput {
  const CanonicalRelation* t1 = nullptr;
  const CanonicalRelation* t2 = nullptr;
  AttributeMatch attr;
  TupleMapping mapping;  ///< initial probabilistic tuple mapping
  /// Optional cooperative cancellation (must outlive Solve). Polled
  /// between sub-problems and, inside each solver, at node-expansion
  /// granularity; a fired token makes Solve return its Status
  /// (kCancelled / kDeadlineExceeded) within milliseconds. A solve that
  /// DOES return a result is bit-identical to an uninterrupted one.
  const CancelToken* cancel = nullptr;
  /// Optional out-param: when non-null, Solve writes an admissible upper
  /// bound on the optimal log-probability score here — even when it
  /// returns a cancellation Status (interrupted solvers still prove a
  /// bound; units that never started contribute their search-free root
  /// bound). Stays NaN when no bound could be established. Degradation
  /// reporting (pipeline.h) uses this to quantify how far the greedy
  /// fallback can be from optimal.
  double* incumbent_bound_out = nullptr;

  // --- stage-2 solver program (warm starts + portfolio, ROADMAP 2) ---

  /// Optional warm-start record of a previous solve over the SAME inputs
  /// (the pipeline keys it by stage-1 cache key + stage-2 config tag).
  /// Each unit whose fingerprint matches seeds its branch & bound with
  /// the recorded optimum as a prune-only floor; mismatched or
  /// incomplete records are ignored per unit. Never changes the result:
  /// warm solves are bit-identical to cold ones (core/incumbents.h).
  const SolverIncumbents* warm_start = nullptr;
  /// Optional feasible selection of GLOBAL match ids (sorted ascending),
  /// e.g. the greedy baseline's evidence. Each unit scores the selection
  /// restricted to itself (ScoreUnitSelection) and uses that objective as
  /// a live prune-only floor — the portfolio path's "greedy first" seed.
  /// Units where the selection violates a degree cap simply skip the
  /// floor. Same bit-identity contract as warm_start.
  const std::vector<size_t>* greedy_selection = nullptr;
  /// Optional out-param: when non-null, a successful Solve records its
  /// per-unit fingerprints and objectives here. `complete` is set only
  /// when every unit solved to proven optimality — the condition under
  /// which the record may be stored and later seeded from.
  SolverIncumbents* incumbents_out = nullptr;
};

/// Solve diagnostics (Figure 7c / Figure 8 report solve_seconds).
struct Explain3DStats {
  SmartPartitionStats partition;
  size_t num_subproblems = 0;
  size_t milp_solved = 0;   ///< sub-problems through the MILP encoding
  size_t exact_solved = 0;  ///< sub-problems through assignment B&B
  size_t total_nodes = 0;   ///< branch & bound nodes across sub-problems
  double solve_seconds = 0;  ///< stage-2 optimization time
  bool all_optimal = true;   ///< false if any sub-problem hit a limit
  /// Units whose branch & bound was seeded from a matching warm-start
  /// incumbent (Explain3DInput::warm_start, fingerprint verified).
  size_t warm_start_hits = 0;
};

/// Stage-2 output.
struct Explain3DResult {
  ExplanationSet explanations;
  Explain3DStats stats;
};

/// The solver. Thread-compatible: Solve is const and carries no state
/// between calls.
class Explain3DSolver {
 public:
  explicit Explain3DSolver(Explain3DConfig config = Explain3DConfig())
      : config_(config), prob_(config) {}

  const Explain3DConfig& config() const { return config_; }
  const ProbabilityModel& probability_model() const { return prob_; }

  /// Solves EXP-3D for the given canonical relations and initial mapping.
  Result<Explain3DResult> Solve(const Explain3DInput& input) const;

 private:
  Explain3DConfig config_;
  ProbabilityModel prob_;
};

}  // namespace explain3d

#endif  // EXPLAIN3D_CORE_SOLVER_H_
