#include "core/partitioning.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.h"
#include "common/timer.h"
#include "partition/partitioner.h"

namespace explain3d {

double AdjustEdgeWeight(double p, double theta_low, double theta_high,
                        double reward) {
  if (p >= theta_high) return p * reward;
  if (p <= theta_low) return p / reward;
  return p;
}

Graph BuildMatchGraph(size_t n1, size_t n2, const TupleMapping& mapping,
                      bool adjust, double theta_low, double theta_high,
                      double reward) {
  Graph g(n1 + n2);
  for (const TupleMatch& m : mapping) {
    double w = adjust ? AdjustEdgeWeight(m.p, theta_low, theta_high, reward)
                      : m.p;
    g.AddEdge(m.t1, n1 + m.t2, w);
  }
  return g;
}

std::vector<SubProblem> ComponentSubproblems(size_t n1, size_t n2,
                                             const TupleMapping& mapping) {
  Graph g = BuildMatchGraph(n1, n2, mapping, /*adjust=*/false, 0, 1, 1);
  std::vector<int> comp;
  size_t count = ConnectedComponents(g, &comp);
  std::vector<SubProblem> subs(count);
  for (size_t u = 0; u < n1; ++u) {
    subs[comp[u]].t1_ids.push_back(u);
  }
  for (size_t v = 0; v < n2; ++v) {
    subs[comp[n1 + v]].t2_ids.push_back(v);
  }
  for (size_t k = 0; k < mapping.size(); ++k) {
    subs[comp[mapping[k].t1]].match_ids.push_back(k);
  }
  return subs;
}

PrePartitionResult PrePartition(size_t n1, size_t n2,
                                const TupleMapping& mapping,
                                const Explain3DConfig& config,
                                size_t max_cluster_tuples) {
  size_t n = n1 + n2;
  PrePartitionResult out;
  out.tuple_cluster.assign(n, static_cast<size_t>(-1));

  // Adjacency restricted to high-probability matches.
  std::vector<std::vector<size_t>> high_adj(n);
  for (const TupleMatch& m : mapping) {
    if (m.p >= config.theta_high) {
      high_adj[m.t1].push_back(n1 + m.t2);
      high_adj[n1 + m.t2].push_back(m.t1);
    }
  }

  // Lines 2-7: grow clusters along high-probability matches (DFS), capped
  // so clusters remain placeable under the balance constraint.
  size_t cluster = 0;
  std::deque<size_t> stack;
  for (size_t s = 0; s < n; ++s) {
    if (out.tuple_cluster[s] != static_cast<size_t>(-1)) continue;
    size_t size = 0;
    stack.push_back(s);
    out.tuple_cluster[s] = cluster;
    while (!stack.empty()) {
      size_t u = stack.back();
      stack.pop_back();
      ++size;
      if (size >= max_cluster_tuples) break;
      for (size_t v : high_adj[u]) {
        if (out.tuple_cluster[v] == static_cast<size_t>(-1)) {
          out.tuple_cluster[v] = cluster;
          stack.push_back(v);
        }
      }
    }
    stack.clear();
    ++cluster;
  }
  out.num_clusters = cluster;

  // Lines 8-10: cluster graph with adjusted inter-cluster edge weights;
  // node weight = number of merged tuples.
  Graph cg(cluster);
  for (size_t u = 0; u < cluster; ++u) cg.set_node_weight(u, 0.0);
  for (size_t u = 0; u < n; ++u) {
    size_t c = out.tuple_cluster[u];
    cg.set_node_weight(c, cg.node_weight(c) + 1.0);
  }
  for (const TupleMatch& m : mapping) {
    size_t cu = out.tuple_cluster[m.t1];
    size_t cv = out.tuple_cluster[n1 + m.t2];
    if (cu == cv) continue;
    cg.AddEdge(cu, cv,
               AdjustEdgeWeight(m.p, config.theta_low, config.theta_high,
                                config.reward));
  }
  out.cluster_graph = std::move(cg);
  return out;
}

Result<std::vector<SubProblem>> SmartPartition(
    size_t n1, size_t n2, const TupleMapping& mapping,
    const Explain3DConfig& config, SmartPartitionStats* stats) {
  size_t n = n1 + n2;
  size_t batch = config.batch_size;
  SmartPartitionStats local;
  if (stats == nullptr) stats = &local;

  if (batch == 0 || batch >= n) {
    // Partitioning disabled or unnecessary: lossless components.
    stats->num_parts = 1;
    return ComponentSubproblems(n1, n2, mapping);
  }

  size_t k = (n + batch - 1) / batch;

  Timer prep_timer;
  std::vector<size_t> tuple_cluster;
  Graph to_partition;
  if (config.use_pre_partitioning) {
    PrePartitionResult pre = PrePartition(n1, n2, mapping, config, batch);
    stats->num_clusters = pre.num_clusters;
    tuple_cluster = std::move(pre.tuple_cluster);
    to_partition = std::move(pre.cluster_graph);
  } else {
    // Ablation: partition the raw tuple graph with adjusted weights.
    stats->num_clusters = n;
    tuple_cluster.resize(n);
    for (size_t u = 0; u < n; ++u) tuple_cluster[u] = u;
    to_partition =
        BuildMatchGraph(n1, n2, mapping, /*adjust=*/true, config.theta_low,
                        config.theta_high, config.reward);
  }
  stats->prepartition_seconds = prep_timer.Seconds();

  Timer part_timer;
  PartitionOptions popts;
  popts.num_parts = k;
  popts.max_part_weight = static_cast<double>(batch);
  popts.seed = config.seed;
  E3D_ASSIGN_OR_RETURN(PartitionResult part,
                       PartitionGraph(to_partition, popts));
  stats->partition_seconds = part_timer.Seconds();
  stats->num_parts = k;
  stats->edge_cut_weight = part.edge_cut;

  // Project parts back to tuples and split matches.
  std::vector<SubProblem> subs(k);
  std::vector<int> tuple_part(n);
  for (size_t u = 0; u < n; ++u) {
    tuple_part[u] = part.assignment[tuple_cluster[u]];
  }
  for (size_t u = 0; u < n1; ++u) {
    subs[tuple_part[u]].t1_ids.push_back(u);
  }
  for (size_t v = 0; v < n2; ++v) {
    subs[tuple_part[n1 + v]].t2_ids.push_back(v);
  }
  for (size_t idx = 0; idx < mapping.size(); ++idx) {
    const TupleMatch& m = mapping[idx];
    int pu = tuple_part[m.t1];
    int pv = tuple_part[n1 + m.t2];
    if (pu == pv) {
      subs[pu].match_ids.push_back(idx);
    } else {
      ++stats->cut_matches;
    }
  }
  return subs;
}

}  // namespace explain3d
