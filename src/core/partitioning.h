// The smart-partitioning optimizer of Section 4.
//
// Stage 2's MILP does not scale to large bipartite match graphs; this
// module splits an EXP-3D instance into bounded-size sub-problems:
//
//   * edge-weight adjustment: w = p·R when p ≥ θh, p/R when p ≤ θl,
//     else p — so the graph partitioner avoids cutting high-probability
//     matches (whose loss hurts the objective most);
//   * pre-partitioning (Algorithm 2): tuples connected by θh-probability
//     matches merge into cluster nodes, shrinking the graph the
//     partitioner must handle (the paper reports ~200× partitioning
//     speedups at 10K tuples);
//   * smart partitioning (Algorithm 3): partition the (pre-partitioned)
//     graph with the multilevel GPP solver under the Lmax balance cap and
//     project the parts back to tuples.
//
// Matches cut by the partition belong to no sub-problem: they are
// excluded from the evidence, which is the optimizer's only
// (empirically negligible) source of accuracy loss.

#ifndef EXPLAIN3D_CORE_PARTITIONING_H_
#define EXPLAIN3D_CORE_PARTITIONING_H_

#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/subproblem.h"
#include "matching/tuple_mapping.h"
#include "partition/graph.h"

namespace explain3d {

/// Section 4's edge-weight adjustment.
double AdjustEdgeWeight(double p, double theta_low, double theta_high,
                        double reward);

/// Builds the bipartite match graph: nodes [0, n1) are T1 tuples, nodes
/// [n1, n1+n2) are T2 tuples; edges carry (optionally adjusted) weights.
Graph BuildMatchGraph(size_t n1, size_t n2, const TupleMapping& mapping,
                      bool adjust, double theta_low, double theta_high,
                      double reward);

/// Maximal-connected-component decomposition (the optimization the paper
/// builds on; lossless). Isolated tuples form singleton sub-problems.
std::vector<SubProblem> ComponentSubproblems(size_t n1, size_t n2,
                                             const TupleMapping& mapping);

/// Result of Algorithm 2: the coarse cluster graph and tuple→cluster map.
struct PrePartitionResult {
  Graph cluster_graph;               ///< node weight = tuples per cluster
  std::vector<size_t> tuple_cluster;  ///< size n1+n2
  size_t num_clusters = 0;
};

/// Algorithm 2: merges tuples connected by matches with p ≥ θh (capped at
/// `max_cluster_tuples` per cluster so clusters stay placeable under
/// Lmax) and accumulates adjusted edge weights between clusters.
PrePartitionResult PrePartition(size_t n1, size_t n2,
                                const TupleMapping& mapping,
                                const Explain3DConfig& config,
                                size_t max_cluster_tuples);

/// Statistics reported by SmartPartition (Figure 8 / E9 benches).
struct SmartPartitionStats {
  size_t num_parts = 0;
  size_t num_clusters = 0;       ///< after pre-partitioning
  double edge_cut_weight = 0;    ///< adjusted-weight cut
  size_t cut_matches = 0;        ///< matches dropped by the partition
  double partition_seconds = 0;  ///< GPP time (excludes pre-partitioning)
  double prepartition_seconds = 0;
};

/// Algorithm 3: pre-partition, run the multilevel partitioner with
/// k = ceil((n1+n2)/batch) and Lmax = batch, then project parts back to
/// tuple-level sub-problems. With batch ≥ n1+n2 this degenerates to the
/// component decomposition.
Result<std::vector<SubProblem>> SmartPartition(
    size_t n1, size_t n2, const TupleMapping& mapping,
    const Explain3DConfig& config, SmartPartitionStats* stats);

}  // namespace explain3d

#endif  // EXPLAIN3D_CORE_PARTITIONING_H_
