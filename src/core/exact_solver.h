// Structure-exploiting exact solver for EXP-3D sub-problems.
//
// The MILP of Section 3.2 has a special shape: under a valid mapping one
// side (the "assigning" side) has degree ≤ 1, so a solution is exactly an
// assignment of each assigning-side tuple to one adjacent other-side tuple
// or to removal; the other side's keep/remove status and the optimal
// value-based explanations are then implied:
//
//   * an other-side tuple is kept iff it receives ≥ 1 assignment
//     (completeness coverage),
//   * within a group whose impact sums disagree, exactly one value change
//     reconciles it (changing the group head to the member sum is always
//     feasible), costing c − b; matching sums cost nothing.
//
// This enables a branch & bound over per-tuple assignment choices with an
// admissible bound, which scales to the component sizes where the generic
// MILP (dense basis inverse) becomes impractical. Both solvers are exact;
// tests cross-check them on random instances (see DESIGN.md).

#ifndef EXPLAIN3D_CORE_EXACT_SOLVER_H_
#define EXPLAIN3D_CORE_EXACT_SOLVER_H_

#include <limits>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/explanation.h"
#include "core/probability_model.h"
#include "core/subproblem.h"
#include "matching/attribute_match.h"

namespace explain3d {

/// Result of one component solve.
struct ExactSolveResult {
  ExplanationSet explanations;
  /// Objective value restricted to this sub-problem (tuple terms plus the
  /// log-probability terms of its matches).
  double objective = 0;
  /// Admissible upper bound on the sub-problem's exact optimum: equal to
  /// `objective` when proven_optimal, the root optimistic bound when the
  /// node limit truncated the search.
  double bound = 0;
  bool proven_optimal = true;  ///< false when the node limit was hit
  size_t nodes = 0;
};

/// Solves one sub-problem exactly by assignment branch & bound.
///
/// `max_nodes` bounds the search; on hitting it the best incumbent is
/// returned with proven_optimal = false. `cancel` (nullptr = never) is
/// polled at node-expansion granularity; when it fires mid-search the
/// call abandons its state and returns the token's Status — never a
/// time-truncated incumbent, so interrupted calls cannot perturb
/// determinism. An interrupted call still proves an optimistic bound on
/// the component's objective (the admissible root bound); when
/// `interrupted_bound` is non-null it receives that bound, letting
/// degradation reporting quantify "best possible ≤ X" without touching
/// the discarded incumbent.
///
/// `warm_objective` (NaN = none) is an optional warm-start incumbent
/// objective — a previously PROVEN optimum of this exact sub-problem, or
/// any feasible selection's score (e.g. the greedy baseline's). It is
/// lowered by kWarmStartMargin and used as a prune-only floor, so the
/// search visits a subset of the cold run's nodes yet accepts the same
/// final leaf: warm and cold solves return bit-identical explanations.
/// A floored search that fails to prove optimality (stale floor, node
/// limit) is rerun cold internally — a bad floor can cost time, never
/// correctness.
Result<ExactSolveResult> SolveComponentExact(
    const CanonicalRelation& t1, const CanonicalRelation& t2,
    const TupleMapping& mapping, const AttributeMatch& attr,
    const ProbabilityModel& prob, const SubProblem& sub,
    size_t max_nodes = 4000000, const CancelToken* cancel = nullptr,
    double* interrupted_bound = nullptr,
    double warm_objective = std::numeric_limits<double>::quiet_NaN());

/// Scores the canonical decode of a feasible match-id selection on one
/// sub-problem: each selected match assigns its degree-capped-side tuple,
/// unassigned tuples are removed, and group terms are implied — exactly
/// the objective SolveComponentExact would report for that assignment
/// (const edge terms included). `selected_match_ids` must be sorted;
/// match ids outside the sub-problem are ignored. Fails when the
/// selection violates a degree cap — the portfolio path then simply
/// skips the greedy floor for the unit.
Result<double> ScoreUnitSelection(
    const CanonicalRelation& t1, const CanonicalRelation& t2,
    const TupleMapping& mapping, const AttributeMatch& attr,
    const ProbabilityModel& prob, const SubProblem& sub,
    const std::vector<size_t>& selected_match_ids);

/// The admissible root bound of the assignment branch & bound WITHOUT
/// running the search — an upper bound on the sub-problem's exact
/// objective, O(tuples + matches). Used to bound components a degraded
/// run never got to start.
Result<double> ComponentOptimisticBound(
    const CanonicalRelation& t1, const CanonicalRelation& t2,
    const TupleMapping& mapping, const AttributeMatch& attr,
    const ProbabilityModel& prob, const SubProblem& sub);

}  // namespace explain3d

#endif  // EXPLAIN3D_CORE_EXACT_SOLVER_H_
