// Configuration knobs of the explain3d framework. docs/API.md carries
// the field-by-field reference table.

#ifndef EXPLAIN3D_CORE_CONFIG_H_
#define EXPLAIN3D_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace explain3d {

/// \brief What RunExplain3D returns when its stage-2 budget (request
/// deadline or Explain3DConfig::milp_time_limit_seconds) interrupts the
/// exact solve.
enum class DegradationMode {
  /// An interrupted solve FAILS the call with the token's Status
  /// (kDeadlineExceeded / kCancelled) and returns nothing — every result
  /// that IS returned is the bit-identical exact optimum. The default,
  /// and the semantics of every release before degradation existed.
  kStrict = 0,
  /// Anytime fallback: a slice of the stage-2 budget
  /// (Explain3DConfig::fallback_budget_fraction) is reserved up front;
  /// the exact solve runs under the remainder, and when that remainder
  /// interrupts it — a fired DEADLINE or BUDGET, never a user cancel —
  /// the greedy baseline (Section 5.1.3) runs on the already-built
  /// stage-1 artifacts inside the reserved slice. The result is
  /// explicitly marked PipelineResult::degraded() with quality metadata
  /// (DegradationInfo); a degraded answer is never a silent substitute
  /// for an exact one. Fast solves that finish inside the budget are
  /// bit-identical to kStrict.
  kFallbackGreedy = 1,
};

/// \brief All tunables of the 3-stage pipeline and the Section-4
/// optimizer.
///
/// Defaults follow the paper where it states values (θl=0.1, θh=0.9,
/// R=100); α and β are the a-priori probabilities of Section 3.1,
/// α,β ∈ (0.5, 1]. The same config parameterizes every algorithm of the
/// experiment harness, so ablations are one-field diffs.
struct Explain3DConfig {
  // --- probability model (Section 3.1) ---
  double alpha = 0.9;  ///< prior P(tuple covered by both datasets)
  double beta = 0.9;   ///< prior P(tuple impact is correct)

  // --- smart partitioning (Section 4) ---
  /// Batch size (max tuples per partition, Lmax). 0 disables graph
  /// partitioning: the solver still decomposes into connected components
  /// (the "NoOpt" configuration of Section 5.3 — the paper's basic
  /// algorithm modulo solver-presolve-equivalent decomposition).
  size_t batch_size = 1000;
  double theta_low = 0.1;   ///< θl: low-probability edge threshold
  double theta_high = 0.9;  ///< θh: high-probability edge threshold
  double reward = 100.0;    ///< R: weight reward/penalty factor
  bool use_pre_partitioning = true;  ///< Algorithm 2 on/off (ablation)
  /// Decompose each sub-problem into maximal connected components before
  /// solving (lossless, Section 4's opening observation; equivalent to an
  /// industrial solver's block presolve). The Figure-8 "NoOpt" runs turn
  /// this off to solve one monolithic problem, as the paper's basic
  /// algorithm does.
  bool decompose_components = true;
  uint64_t seed = 1;

  // --- MILP solving (Section 3.2) ---
  /// Components whose encoded model stays under this many constraints are
  /// solved through the faithful Section-3.2 MILP encoding; larger
  /// components fall back to the structure-exploiting exact branch &
  /// bound (see DESIGN.md substitutions — both are exact).
  size_t milp_max_constraints = 250;
  /// Wall-clock budget of the WHOLE stage-2 solve, enforced through a
  /// deadline CancelToken (common/cancel.h) linked under the caller's
  /// request token. 0 (the default) = unlimited. When the budget fires,
  /// Solve fails with kDeadlineExceeded instead of returning a
  /// time-truncated incumbent — results are therefore bit-identical
  /// however slowly the machine runs (the old per-component wall-clock
  /// fallback path, which silently switched solvers under load, is
  /// gone). Prefer per-request deadlines (ExplanationRequest::
  /// deadline_seconds) on the serving path.
  double milp_time_limit_seconds = 0;
  size_t milp_max_nodes = 50000;
  /// Node limit of the specialized component solver.
  size_t exact_max_nodes = 4000000;

  // --- graceful degradation (anytime serving) ---
  /// See DegradationMode. Only consulted when the stage-2 budget is
  /// finite (a request deadline or milp_time_limit_seconds is set);
  /// unbounded calls always run the exact solve to completion.
  DegradationMode degradation_mode = DegradationMode::kStrict;
  /// Fraction of the stage-2 budget withheld from the exact solve and
  /// reserved for the greedy fallback under kFallbackGreedy, so a
  /// degraded answer still arrives INSIDE the caller's deadline. The
  /// greedy pass is O(m log m) over the initial mapping — milliseconds —
  /// so a thin slice suffices.
  double fallback_budget_fraction = 0.15;

  // --- stage-2 solver program (warm starts + portfolio, ROADMAP 2) ---
  /// Consult and maintain the MatchingContext's warm-start incumbent
  /// store: a completed fully-optimal solve records its per-unit optima
  /// (fingerprinted — see core/incumbents.h), and a repeated request over
  /// the same cache key seeds both exact engines with the recorded
  /// objective as a prune-only floor. Warm results are bit-identical to
  /// cold ones; a stale or mismatched record is skipped, never trusted.
  /// No effect without a MatchingContext in PipelineInput.
  bool warm_start = true;
  /// Portfolio mode: run the greedy baseline FIRST (milliseconds), use
  /// its per-unit objectives as live incumbent floors for the exact
  /// solve, and — when the stage-2 budget interrupts the exact attempt —
  /// return the greedy answer marked degraded
  /// (DegradationInfo::Solver::kGreedyPortfolio) with the interrupted
  /// search's admissible incumbent_bound. Subsumes kFallbackGreedy
  /// (no reserved budget slice needed: the fallback answer already
  /// exists when the exact solve starts) and takes precedence over
  /// degradation_mode when set. Exact solves that finish in budget
  /// return bit-identical results to a strict run.
  bool portfolio = false;

  // --- parallelism ---
  /// Worker threads for BOTH pipeline stages, run on the process-wide
  /// shared pool: stage 1's interning / blocking / candidate scoring
  /// (each per-tuple and per-pair unit is independent) and stage 2's
  /// per-sub-problem solve loop (merged in deterministic sub-problem
  /// order). Output is bit-identical to a serial run for every value.
  /// 0 = auto: hardware_concurrency, or the EXPLAIN3D_NUM_THREADS
  /// environment override when set (CI uses it to exercise the parallel
  /// paths). 1 = run serially on the calling thread.
  size_t num_threads = 0;

  // --- stage-1 caching ---
  /// Byte budget of the MatchingContext passed in PipelineInput (summed
  /// ApproxBytes of the cached Stage1Artifacts blocks): when nonzero,
  /// RunExplain3D forwards it to the context, which evicts
  /// least-recently-used entries past the budget. 0 = unlimited.
  /// Explain3DService surfaces the same knob as
  /// ServiceOptions::cache_budget_bytes.
  size_t cache_budget_bytes = 0;
};

}  // namespace explain3d

#endif  // EXPLAIN3D_CORE_CONFIG_H_
