// Sub-problem: the unit of work stage 2 solves independently.
//
// A sub-problem references a subset of each canonical relation and the
// tuple matches whose endpoints both fall inside it. Connected-component
// decomposition and smart partitioning (partitioning.h) both produce
// sub-problems; matches cut by the partitioner belong to no sub-problem
// and are excluded from the evidence (they contribute log(1−p) to the
// objective).

#ifndef EXPLAIN3D_CORE_SUBPROBLEM_H_
#define EXPLAIN3D_CORE_SUBPROBLEM_H_

#include <cstddef>
#include <vector>

namespace explain3d {

/// Index sets of one sub-problem (global canonical/mapping indices).
struct SubProblem {
  std::vector<size_t> t1_ids;
  std::vector<size_t> t2_ids;
  std::vector<size_t> match_ids;

  size_t num_tuples() const { return t1_ids.size() + t2_ids.size(); }
};

}  // namespace explain3d

#endif  // EXPLAIN3D_CORE_SUBPROBLEM_H_
