#include "core/matching_context.h"

#include <utility>

namespace explain3d {

Result<MatchingContext::ArtifactsPtr> MatchingContext::GetOrBuild(
    const std::string& key, const Builder& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Build outside the lock so a slow stage 1 never blocks lookups of
  // other dataset pairs.
  E3D_ASSIGN_OR_RETURN(ArtifactsPtr built, build());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(key, std::move(built));
  // When two calls raced the build, the first insert wins and both return
  // the same artifacts (they are deterministic anyway).
  return it->second;
}

void MatchingContext::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

size_t MatchingContext::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

size_t MatchingContext::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t MatchingContext::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace explain3d
