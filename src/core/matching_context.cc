#include "core/matching_context.h"

#include <utility>

#include "common/fault.h"

namespace explain3d {

namespace {

// Flat per-element estimate of unordered_map/list node overhead (two
// pointers, a hash, allocator rounding). Keeping it a constant makes the
// accounting deterministic across standard libraries.
constexpr size_t kNodeOverhead = 64;

// Small strings live inline in the object; only spilled capacity counts
// beyond the owner's own footprint.
size_t SpilledBytes(const std::string& s) {
  return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
}

size_t StringBytes(const std::string& s) {
  return sizeof(std::string) + SpilledBytes(s);
}

size_t ValueBytes(const Value& v) {
  size_t b = sizeof(Value);
  if (v.type() == DataType::kString) b += SpilledBytes(v.AsString());
  return b;
}

size_t RowBytes(const Row& row) {
  size_t b = sizeof(Row);
  for (const Value& v : row) b += ValueBytes(v);
  return b;
}

size_t TableBytes(const Table& t) {
  size_t b = sizeof(Table) + StringBytes(t.name());
  for (const Column& c : t.schema().columns()) {
    b += sizeof(Column) + StringBytes(c.name);
  }
  for (const Row& r : t.rows()) b += RowBytes(r);
  return b;
}

size_t ProvenanceBytes(const ProvenanceRelation& p) {
  return TableBytes(p.table) + p.impact.capacity() * sizeof(double) +
         sizeof(ProvenanceRelation);
}

size_t CanonicalBytes(const CanonicalRelation& t) {
  size_t b = sizeof(CanonicalRelation);
  for (const std::string& a : t.key_attrs) b += StringBytes(a);
  for (const CanonicalTuple& tup : t.tuples) {
    b += sizeof(CanonicalTuple) + RowBytes(tup.key) +
         tup.prov_rows.capacity() * sizeof(size_t);
  }
  return b;
}

size_t DictionaryBytes(const TokenDictionary& dict) {
  size_t b = sizeof(TokenDictionary);
  for (uint32_t id = 0; id < dict.size(); ++id) {
    // Each token is stored twice (id map key + reverse vector) plus the
    // map node.
    b += 2 * StringBytes(dict.token(id)) + kNodeOverhead;
  }
  return b;
}

size_t InternedBytes(const InternedRelation& rel) {
  // The columnar layout keeps everything in a handful of flat arrays
  // (token ids + offsets + per-cell classification columns); the relation
  // reports their heap footprint itself — O(1), no per-tuple walk.
  return sizeof(InternedRelation) + rel.flat_bytes();
}

// Full charge of one artifact cache entry: the block itself plus the key
// string (stored twice — map key and LRU list node) plus node overhead.
size_t EntryCharge(const std::string& key, size_t art_bytes) {
  return art_bytes + 2 * StringBytes(key) + kNodeOverhead;
}

// Charge of one incumbent record under the same model.
size_t IncumbentCharge(const std::string& key, const SolverIncumbents& inc) {
  return sizeof(SolverIncumbents) +
         inc.units.capacity() * sizeof(UnitIncumbent) + 2 * StringBytes(key) +
         kNodeOverhead;
}

}  // namespace

size_t ApproxBytes(const Stage1Artifacts& art) {
  size_t b = sizeof(Stage1Artifacts);
  b += ValueBytes(art.answer1) + ValueBytes(art.answer2);
  b += ProvenanceBytes(art.p1) + ProvenanceBytes(art.p2);
  b += CanonicalBytes(art.t1) + CanonicalBytes(art.t2);
  b += DictionaryBytes(art.dict);
  if (art.i1 != nullptr) b += InternedBytes(*art.i1);
  if (art.i2 != nullptr) b += InternedBytes(*art.i2);
  b += art.candidates.capacity() * sizeof(CandidatePairs::value_type);
  return b;
}

Result<MatchingContext::ArtifactsPtr> MatchingContext::GetOrBuild(
    const std::string& key, const Builder& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      // Refresh the LRU position: this entry is now the most recent.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.art;
    }
    ++misses_;
  }
  // Build outside the lock so a slow stage 1 never blocks lookups of
  // other dataset pairs. The O(data) byte-accounting walk stays outside
  // too (the block is immutable once built).
  E3D_ASSIGN_OR_RETURN(ArtifactsPtr built, build());
  size_t built_bytes = ApproxBytes(*built);
  // Fault probe (common/fault.h): a fired cache.insert drops the freshly
  // built block and fails the call — the transient-failure shape of an
  // insert race or allocation failure. A retry simply rebuilds.
  E3D_RETURN_IF_ERROR(FAULT_POINT("cache.insert"));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Two calls raced the build; the first insert wins and both return
    // the same artifacts (they are deterministic anyway).
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.art;
  }
  return InsertLocked(key, std::move(built), built_bytes, /*dirty=*/true);
}

MatchingContext::ArtifactsPtr MatchingContext::InsertLocked(
    const std::string& key, ArtifactsPtr art, size_t art_bytes, bool dirty) {
  Entry entry;
  entry.bytes = EntryCharge(key, art_bytes);
  entry.art = std::move(art);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  bytes_ += entry.bytes;
  ArtifactsPtr result = entry.art;
  cache_.emplace(key, std::move(entry));
  if (dirty) dirty_artifacts_.insert(key);
  EvictOverBudgetLocked();
  return result;
}

bool MatchingContext::Put(const std::string& key, ArtifactsPtr art) {
  if (art == nullptr) return false;
  size_t art_bytes = ApproxBytes(*art);  // O(data); outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_.count(key) > 0) return false;
  InsertLocked(key, std::move(art), art_bytes, /*dirty=*/false);
  return true;
}

std::vector<std::pair<std::string, MatchingContext::ArtifactsPtr>>
MatchingContext::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, ArtifactsPtr>> out;
  out.reserve(cache_.size());
  for (const std::string& key : lru_) {
    out.emplace_back(key, cache_.at(key).art);
  }
  return out;
}

std::vector<std::pair<std::string, MatchingContext::IncumbentsPtr>>
MatchingContext::IncumbentEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, IncumbentsPtr>> out;
  out.reserve(incumbents_.size());
  for (const std::string& key : inc_lru_) {
    out.emplace_back(key, incumbents_.at(key).inc);
  }
  return out;
}

MatchingContext::DirtyKeys MatchingContext::TakeDirtyKeys() {
  std::lock_guard<std::mutex> lock(mu_);
  DirtyKeys out;
  out.artifacts.assign(dirty_artifacts_.begin(), dirty_artifacts_.end());
  out.incumbents.assign(dirty_incumbents_.begin(), dirty_incumbents_.end());
  dirty_artifacts_.clear();
  dirty_incumbents_.clear();
  return out;
}

MatchingContext::ArtifactsPtr MatchingContext::Peek(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  return it == cache_.end() ? nullptr : it->second.art;
}

MatchingContext::IncumbentsPtr MatchingContext::PeekIncumbents(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = incumbents_.find(key);
  return it == incumbents_.end() ? nullptr : it->second.inc;
}

void MatchingContext::EvictOverBudgetLocked() {
  if (budget_bytes_ == 0) return;
  // Fault probe: abandons this eviction round. Benign by design — the
  // cache stays over budget until the next insert retries the walk; the
  // stress suite uses it to prove the byte accounting survives skipped
  // maintenance.
  if (FAULT_FIRED("cache.evict")) return;
  // Never evict the final entry: a single block larger than the budget
  // must still serve its warm path (evicting it would just thrash).
  while (bytes_ > budget_bytes_ && cache_.size() > 1) {
    const std::string& victim = lru_.back();
    auto it = cache_.find(victim);
    bytes_ -= it->second.bytes;
    cache_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
  // Incumbent records are byte-accounted too; if the artifact side alone
  // cannot fit the budget, drop LRU incumbents (cheap to rebuild — one
  // warm exact solve re-records them).
  while (bytes_ > budget_bytes_ && !incumbents_.empty()) {
    auto it = incumbents_.find(inc_lru_.back());
    bytes_ -= it->second.bytes;
    incumbents_.erase(it);
    inc_lru_.pop_back();
  }
}

void MatchingContext::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
  bytes_ = 0;
  incumbents_.clear();
  inc_lru_.clear();
  dirty_artifacts_.clear();
  dirty_incumbents_.clear();
}

size_t MatchingContext::EraseIf(
    const std::function<bool(const std::string&)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t erased = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (pred(*it)) {
      auto entry = cache_.find(*it);
      bytes_ -= entry->second.bytes;
      cache_.erase(entry);
      it = lru_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  // Incumbent keys extend their stage-1 key, so the same predicate (e.g.
  // the service's identity-prefix match) retires both stores in one pass.
  for (auto it = inc_lru_.begin(); it != inc_lru_.end();) {
    if (pred(*it)) {
      auto entry = incumbents_.find(*it);
      bytes_ -= entry->second.bytes;
      incumbents_.erase(entry);
      it = inc_lru_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

MatchingContext::IncumbentsPtr MatchingContext::GetIncumbents(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = incumbents_.find(key);
  if (it == incumbents_.end()) {
    ++incumbent_misses_;
    return nullptr;
  }
  ++incumbent_hits_;
  inc_lru_.splice(inc_lru_.begin(), inc_lru_, it->second.lru_it);
  return it->second.inc;
}

void MatchingContext::PutIncumbents(const std::string& key,
                                    SolverIncumbents inc, bool dirty) {
  if (!inc.complete) return;
  size_t charge = IncumbentCharge(key, inc);
  auto shared =
      std::make_shared<const SolverIncumbents>(std::move(inc));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = incumbents_.find(key);
  if (it != incumbents_.end()) {
    bytes_ -= it->second.bytes;
    bytes_ += charge;
    it->second.bytes = charge;
    it->second.inc = std::move(shared);
    inc_lru_.splice(inc_lru_.begin(), inc_lru_, it->second.lru_it);
    if (dirty) dirty_incumbents_.insert(key);
    return;
  }
  IncumbentEntry entry;
  entry.inc = std::move(shared);
  entry.bytes = charge;
  inc_lru_.push_front(key);
  entry.lru_it = inc_lru_.begin();
  bytes_ += charge;
  incumbents_.emplace(key, std::move(entry));
  if (dirty) dirty_incumbents_.insert(key);
  while (incumbents_.size() > kMaxIncumbentEntries) {
    auto victim = incumbents_.find(inc_lru_.back());
    bytes_ -= victim->second.bytes;
    incumbents_.erase(victim);
    inc_lru_.pop_back();
  }
  EvictOverBudgetLocked();
}

size_t MatchingContext::incumbent_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incumbents_.size();
}

size_t MatchingContext::incumbent_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incumbent_hits_;
}

size_t MatchingContext::incumbent_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incumbent_misses_;
}

void MatchingContext::set_budget_bytes(size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = budget_bytes;
  EvictOverBudgetLocked();
}

size_t MatchingContext::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_bytes_;
}

size_t MatchingContext::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

size_t MatchingContext::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t MatchingContext::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t MatchingContext::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t MatchingContext::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace explain3d
