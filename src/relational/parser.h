// Recursive-descent parser for the supported SQL fragment.
//
// Grammar (keywords case-insensitive):
//
//   select    := SELECT [DISTINCT] item (',' item)*
//                FROM table_ref [WHERE expr] [GROUP BY ident (',' ident)*]
//   item      := agg '(' ('*' | expr) ')' [AS ident] | expr [AS ident]
//   agg       := COUNT | SUM | AVG | MAX | MIN
//   table_ref := primary ((JOIN primary ON expr) | (',' primary))*
//   primary   := ident [ident] | '(' select ')' [ident]
//   expr      := or_expr
//   or_expr   := and_expr (OR and_expr)*
//   and_expr  := not_expr (AND not_expr)*
//   not_expr  := NOT not_expr | predicate
//   predicate := additive [cmp additive | [NOT] LIKE additive
//                | [NOT] IN '(' (select | literal-list) ')'
//                | IS [NOT] NULL]
//              | [NOT] EXISTS '(' select ')'
//   additive  := multiplicative (('+'|'-') multiplicative)*
//   multiplicative := unary (('*'|'/') unary)*
//   unary     := '-' unary | atom
//   atom      := literal | ident['.'ident] | '(' expr ')'

#ifndef EXPLAIN3D_RELATIONAL_PARSER_H_
#define EXPLAIN3D_RELATIONAL_PARSER_H_

#include <string>

#include "common/status.h"
#include "relational/query.h"

namespace explain3d {

/// Parses `sql` into a SelectStmt. Returns ParseError with a position-
/// annotated message on malformed input and Unsupported for SQL outside
/// the fragment.
Result<SelectStmtPtr> ParseSql(const std::string& sql);

/// Parses a standalone scalar/boolean expression (used by tests and by the
/// summarizer to render patterns back into predicates).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_PARSER_H_
