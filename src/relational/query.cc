#include "relational/query.h"

namespace explain3d {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kMin:
      return "MIN";
  }
  return "?";
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (star) return "count";
  if (agg != AggFunc::kNone) {
    std::string inner = expr ? expr->ToString() : "*";
    std::string name = AggFuncName(agg);
    name += "(";
    name += inner;
    name += ")";
    return name;
  }
  if (expr->kind() == Expr::Kind::kColumn) return expr->column_name();
  return expr->ToString();
}

std::string SelectItem::ToSql() const {
  std::string s;
  if (agg != AggFunc::kNone) {
    s = AggFuncName(agg);
    s += "(";
    s += star ? "*" : expr->ToString();
    s += ")";
  } else {
    s = expr->ToString();
  }
  if (!alias.empty()) s += " AS " + alias;
  return s;
}

std::shared_ptr<const TableRef> TableRef::Base(std::string name,
                                               std::string alias) {
  auto t = std::make_shared<TableRef>();
  t->kind = Kind::kBase;
  t->table_name = std::move(name);
  t->alias = std::move(alias);
  return t;
}

std::shared_ptr<const TableRef> TableRef::Subquery(
    std::shared_ptr<const SelectStmt> stmt, std::string alias) {
  auto t = std::make_shared<TableRef>();
  t->kind = Kind::kSubquery;
  t->subquery = std::move(stmt);
  t->alias = std::move(alias);
  return t;
}

std::shared_ptr<const TableRef> TableRef::Join(
    std::shared_ptr<const TableRef> left,
    std::shared_ptr<const TableRef> right, ExprPtr condition) {
  auto t = std::make_shared<TableRef>();
  t->kind = Kind::kJoin;
  t->left = std::move(left);
  t->right = std::move(right);
  t->condition = std::move(condition);
  return t;
}

const std::string& TableRef::QualifierName() const {
  static const std::string kEmpty;
  if (!alias.empty()) return alias;
  if (kind == Kind::kBase) return table_name;
  return kEmpty;
}

std::string TableRef::ToSql() const {
  switch (kind) {
    case Kind::kBase:
      return alias.empty() ? table_name : table_name + " " + alias;
    case Kind::kSubquery:
      return "(" + subquery->ToSql() + ") " + alias;
    case Kind::kJoin: {
      std::string s = left->ToSql();
      if (condition) {
        s += " JOIN " + right->ToSql() + " ON " + condition->ToString();
      } else {
        s += ", " + right->ToSql();
      }
      return s;
    }
  }
  return "?";
}

bool SelectStmt::HasAggregate() const {
  for (const SelectItem& item : items) {
    if (item.is_aggregate()) return true;
  }
  return false;
}

const SelectItem* SelectStmt::SoleAggregate() const {
  const SelectItem* agg = nullptr;
  for (const SelectItem& item : items) {
    if (item.is_aggregate()) {
      if (agg != nullptr) return nullptr;  // more than one aggregate
      agg = &item;
    }
  }
  return agg;
}

std::string SelectStmt::ToSql() const {
  std::string s = "SELECT ";
  if (distinct) s += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) s += ", ";
    s += items[i].ToSql();
  }
  if (from) s += " FROM " + from->ToSql();
  if (where) s += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    s += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += group_by[i];
    }
  }
  return s;
}

}  // namespace explain3d
