// Database: a named catalog of tables.

#ifndef EXPLAIN3D_RELATIONAL_DATABASE_H_
#define EXPLAIN3D_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace explain3d {

/// Owns a set of tables keyed by (case-insensitive) name.
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a table; fails with AlreadyExists on a duplicate name.
  Status AddTable(Table table);

  /// Replaces or inserts a table.
  void PutTable(Table table);

  /// Looks up a table by name (case-insensitive).
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return GetTable(name).ok();
  }

  std::vector<std::string> TableNames() const;

  /// Total row count across all tables (dataset size N in Figure 4).
  size_t TotalRows() const;

 private:
  static std::string Key(const std::string& name);

  std::string name_;
  std::map<std::string, Table> tables_;  // key: lower-cased name
};

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_DATABASE_H_
