// Table: a named, materialized relation (schema + row store).

#ifndef EXPLAIN3D_RELATIONAL_TABLE_H_
#define EXPLAIN3D_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"

namespace explain3d {

/// In-memory relation. Rows are stored densely; row indices are stable
/// (nothing in the engine deletes in place), so a row id can serve as a
/// provenance token.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends a row after checking arity (not types; cells are dynamic).
  Status Append(Row row);
  /// Appends without the arity check (hot path for the executor).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  const Row& row(size_t i) const { return rows_[i]; }
  Row& mutable_row(size_t i) { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Cell accessor by row index and column name; E3D_CHECK-fails on a bad
  /// column name (use schema().Resolve for fallible lookup).
  const Value& Get(size_t row, const std::string& column) const;
  void Set(size_t row, const std::string& column, Value v);

  /// Pretty-prints up to `max_rows` rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_TABLE_H_
