#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace explain3d {

namespace {

/// Splits one CSV text blob into records of fields, honoring quotes.
Status ParseRecords(const std::string& text,
                    std::vector<std::vector<std::string>>* out) {
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    if (record.size() > 1 || !record[0].empty()) {
      out->push_back(std::move(record));
    }
    record.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
        } else {
          field += c;
        }
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;
        break;
      case '\n':
        end_record();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (!field.empty() || !record.empty()) end_record();
  return Status::OK();
}

DataType TypeFromSuffix(const std::string& suffix) {
  std::string s = ToLower(suffix);
  if (s == "int") return DataType::kInt64;
  if (s == "real" || s == "double" || s == "float") return DataType::kDouble;
  return DataType::kString;
}

const char* SuffixFromType(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int";
    case DataType::kDouble:
      return "real";
    default:
      return "str";
  }
}

std::string EscapeCsv(const std::string& s) {
  bool needs_quotes = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Result<Table> ParseCsv(const std::string& name, const std::string& text) {
  std::vector<std::vector<std::string>> records;
  E3D_RETURN_IF_ERROR(ParseRecords(text, &records));
  if (records.empty()) {
    return Status::ParseError("CSV has no header record");
  }
  Schema schema;
  for (const std::string& header : records[0]) {
    size_t colon = header.rfind(':');
    if (colon != std::string::npos) {
      schema.AddColumn(Column(Trim(header.substr(0, colon)),
                              TypeFromSuffix(header.substr(colon + 1))));
    } else {
      schema.AddColumn(Column(Trim(header), DataType::kString));
    }
  }
  Table table(name, schema);
  for (size_t r = 1; r < records.size(); ++r) {
    const auto& rec = records[r];
    if (rec.size() != schema.num_columns()) {
      return Status::ParseError(
          StrFormat("CSV record %zu has %zu fields, expected %zu", r,
                    rec.size(), schema.num_columns()));
    }
    Row row;
    row.reserve(rec.size());
    for (size_t c = 0; c < rec.size(); ++c) {
      E3D_ASSIGN_OR_RETURN(Value v,
                           ParseValueAs(rec[c], schema.column(c).type));
      row.push_back(std::move(v));
    }
    table.AppendUnchecked(std::move(row));
  }
  return table;
}

Result<Table> LoadCsvFile(const std::string& name, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  // A failed stream here means the read stopped early — parsing the
  // partial text could silently produce a truncated table.
  if (in.bad() || ss.fail()) {
    return Status::IOError("read failed for " + path);
  }
  return ParseCsv(name, ss.str());
}

std::string ToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += EscapeCsv(schema.column(c).name) + ":" +
           SuffixFromType(schema.column(c).type);
  }
  out += "\n";
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      if (!row[c].is_null()) out += EscapeCsv(row[c].ToDisplayString());
    }
    out += "\n";
  }
  return out;
}

Status SaveCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToCsv(table);
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace explain3d
