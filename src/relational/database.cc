#include "relational/database.h"

#include "common/string_util.h"

namespace explain3d {

std::string Database::Key(const std::string& name) { return ToLower(name); }

Status Database::AddTable(Table table) {
  std::string key = Key(table.name());
  if (key.empty()) {
    return Status::InvalidArgument("table must have a name");
  }
  if (tables_.count(key)) {
    return Status::AlreadyExists("table '" + table.name() + "' exists");
  }
  tables_.emplace(std::move(key), std::move(table));
  return Status::OK();
}

void Database::PutTable(Table table) {
  tables_[Key(table.name())] = std::move(table);
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "' in database '" +
                            name_ + "'");
  }
  return &it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "' in database '" +
                            name_ + "'");
  }
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) {
    (void)key;
    out.push_back(table.name());
  }
  return out;
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& [key, table] : tables_) {
    (void)key;
    n += table.num_rows();
  }
  return n;
}

}  // namespace explain3d
