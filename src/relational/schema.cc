#include "relational/schema.h"

#include <cctype>

#include "common/string_util.h"

namespace explain3d {

namespace {
// Case-insensitive ASCII equality.
bool IEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string BaseName(const std::string& name) {
  size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}
}  // namespace

Result<size_t> Schema::Resolve(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (IEquals(columns_[i].name, name)) return i;
  }
  // Unqualified suffix match.
  size_t found = columns_.size();
  int matches = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (IEquals(BaseName(columns_[i].name), name)) {
      found = i;
      ++matches;
    }
  }
  if (matches == 1) return found;
  if (matches > 1) {
    return Status::InvalidArgument("ambiguous column reference: " + name);
  }
  return Status::NotFound("no column named '" + name + "' in schema [" +
                          ToString() + "]");
}

Schema Schema::Qualified(const std::string& qualifier) const {
  Schema out;
  for (const Column& c : columns_) {
    out.AddColumn(Column(qualifier + "." + BaseName(c.name), c.type));
  }
  return out;
}

std::string Schema::ToString() const {
  std::string s;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) s += ", ";
    s += columns_[i].name;
    s += ":";
    s += DataTypeName(columns_[i].type);
  }
  return s;
}

}  // namespace explain3d
