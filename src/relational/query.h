// Query AST for the supported SQL fragment (paper Section 2.1):
//
//   Q = π_o σ_C (X)
//
// where X is a base table, a join tree, or a subquery; C is any condition
// without UDFs; o is a set of attributes or one of the five SQL aggregates
// (SUM, COUNT, AVG, MAX, MIN). GROUP BY and DISTINCT are also supported,
// which covers all 10 IMDb query templates and the academic queries.

#ifndef EXPLAIN3D_RELATIONAL_QUERY_H_
#define EXPLAIN3D_RELATIONAL_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/expression.h"

namespace explain3d {

/// Aggregate function of a select item; kNone for a plain expression.
enum class AggFunc { kNone = 0, kCount, kSum, kAvg, kMax, kMin };

const char* AggFuncName(AggFunc f);

/// One item in the SELECT clause: `expr`, `agg(expr)`, or `COUNT(*)`.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  ExprPtr expr;        ///< null only for COUNT(*)
  bool star = false;   ///< COUNT(*)
  std::string alias;   ///< optional output column name

  bool is_aggregate() const { return agg != AggFunc::kNone; }
  /// Output column name: alias if set, else a derived name.
  std::string OutputName() const;
  std::string ToSql() const;
};

struct SelectStmt;

/// FROM-clause element: base table, parenthesized subquery, or join.
struct TableRef {
  enum class Kind { kBase, kSubquery, kJoin };

  Kind kind = Kind::kBase;

  // kBase
  std::string table_name;
  // kBase / kSubquery
  std::string alias;
  std::shared_ptr<const SelectStmt> subquery;
  // kJoin: INNER JOIN with an ON condition; `condition` may be null for a
  // cross join (comma-join), in which case WHERE carries the predicate.
  std::shared_ptr<const TableRef> left;
  std::shared_ptr<const TableRef> right;
  ExprPtr condition;

  static std::shared_ptr<const TableRef> Base(std::string name,
                                              std::string alias = "");
  static std::shared_ptr<const TableRef> Subquery(
      std::shared_ptr<const SelectStmt> stmt, std::string alias);
  static std::shared_ptr<const TableRef> Join(
      std::shared_ptr<const TableRef> left,
      std::shared_ptr<const TableRef> right, ExprPtr condition);

  /// Name the result relation is qualified by (alias or table name; empty
  /// for joins).
  const std::string& QualifierName() const;

  std::string ToSql() const;
};

/// SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::shared_ptr<const TableRef> from;
  ExprPtr where;                       ///< may be null
  std::vector<std::string> group_by;   ///< column names; may be empty

  /// True when any select item aggregates.
  bool HasAggregate() const;
  /// The single aggregate item, if the statement has exactly one aggregate
  /// and no plain items outside GROUP BY; used by provenance derivation.
  const SelectItem* SoleAggregate() const;

  std::string ToSql() const;
};

using SelectStmtPtr = std::shared_ptr<const SelectStmt>;

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_QUERY_H_
