#include "relational/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"

namespace explain3d {

namespace {

enum class TokKind {
  kEnd,
  kIdent,
  kNumber,
  kString,
  kSymbol,  // punctuation / operators
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier (original case), symbol, or string body
  double number = 0;
  bool is_int = false;
  int64_t int_value = 0;
  size_t pos = 0;  // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token tok;
      tok.pos = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < in_.size() &&
               (std::isalnum(static_cast<unsigned char>(in_[j])) ||
                in_[j] == '_')) {
          ++j;
        }
        tok.kind = TokKind::kIdent;
        tok.text = in_.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && i + 1 < in_.size() &&
                  std::isdigit(static_cast<unsigned char>(in_[i + 1])))) {
        size_t j = i;
        bool has_dot = false;
        while (j < in_.size() &&
               (std::isdigit(static_cast<unsigned char>(in_[j])) ||
                (in_[j] == '.' && !has_dot))) {
          if (in_[j] == '.') has_dot = true;
          ++j;
        }
        tok.kind = TokKind::kNumber;
        std::string num = in_.substr(i, j - i);
        if (has_dot) {
          tok.number = std::strtod(num.c_str(), nullptr);
          tok.is_int = false;
        } else {
          tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
          tok.number = static_cast<double>(tok.int_value);
          tok.is_int = true;
        }
        i = j;
      } else if (c == '\'' || c == '"') {
        char quote = c;
        size_t j = i + 1;
        std::string body;
        bool closed = false;
        while (j < in_.size()) {
          if (in_[j] == quote) {
            if (j + 1 < in_.size() && in_[j + 1] == quote) {
              body += quote;  // doubled quote escapes itself
              j += 2;
              continue;
            }
            closed = true;
            ++j;
            break;
          }
          body += in_[j++];
        }
        if (!closed) {
          return Status::ParseError(StrFormat(
              "unterminated string literal at offset %zu", i));
        }
        tok.kind = TokKind::kString;
        tok.text = std::move(body);
        i = j;
      } else {
        // Multi-char operators first.
        static const char* kTwoChar[] = {"<>", "<=", ">=", "!="};
        bool matched = false;
        for (const char* op : kTwoChar) {
          if (in_.compare(i, 2, op) == 0) {
            tok.kind = TokKind::kSymbol;
            tok.text = op;
            i += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          static const std::string kSingles = "(),.*=<>+-/;";
          if (kSingles.find(c) == std::string::npos) {
            return Status::ParseError(
                StrFormat("unexpected character '%c' at offset %zu", c, i));
          }
          tok.kind = TokKind::kSymbol;
          tok.text = std::string(1, c);
          ++i;
        }
      }
      out->push_back(std::move(tok));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.pos = in_.size();
    out->push_back(end);
    return Status::OK();
  }

 private:
  const std::string& in_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<SelectStmtPtr> ParseSelectStatement() {
    E3D_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect());
    // Allow a trailing semicolon.
    if (PeekSymbol(";")) Advance();
    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input after statement");
    }
    return stmt;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    E3D_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != TokKind::kEnd) {
      return Status(StatusCode::kParseError,
                    "trailing input after expression");
    }
    return e;
  }

 private:
  // --- token helpers -----------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Advance() { return toks_[pos_++]; }

  bool PeekKeyword(const char* kw) const {
    const Token& t = Peek();
    return t.kind == TokKind::kIdent && IEq(t.text, kw);
  }
  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekSymbol(const char* sym) const {
    const Token& t = Peek();
    return t.kind == TokKind::kSymbol && t.text == sym;
  }
  bool AcceptSymbol(const char* sym) {
    if (PeekSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(StrFormat("expected '%s' at offset %zu", sym,
                                          Peek().pos));
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(
          StrFormat("expected %s at offset %zu", kw, Peek().pos));
    }
    return Status::OK();
  }

  static bool IEq(const std::string& a, const char* b) {
    size_t n = 0;
    for (; b[n]; ++n) {
      if (n >= a.size() ||
          std::tolower(static_cast<unsigned char>(a[n])) !=
              std::tolower(static_cast<unsigned char>(b[n]))) {
        return false;
      }
    }
    return n == a.size();
  }

  static bool IsKeywordText(const std::string& s) {
    static const char* kKeywords[] = {
        "select", "distinct", "from",  "where", "group", "by",   "join",
        "on",     "and",      "or",    "not",   "in",    "like", "is",
        "null",   "exists",   "count", "sum",   "avg",   "max",  "min",
        "as"};
    for (const char* kw : kKeywords) {
      if (IEq(s, kw)) return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu", msg.c_str(), Peek().pos));
  }

  // --- grammar ------------------------------------------------------------
  Result<SelectStmtPtr> ParseSelect() {
    E3D_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto stmt = std::make_shared<SelectStmt>();
    stmt->distinct = AcceptKeyword("distinct");
    do {
      E3D_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
    } while (AcceptSymbol(","));
    E3D_RETURN_IF_ERROR(ExpectKeyword("from"));
    E3D_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
    if (AcceptKeyword("where")) {
      E3D_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      E3D_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        E3D_ASSIGN_OR_RETURN(std::string name, ParseColumnName());
        stmt->group_by.push_back(std::move(name));
      } while (AcceptSymbol(","));
    }
    return SelectStmtPtr(stmt);
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    AggFunc agg = AggFunc::kNone;
    if (PeekKeyword("count")) agg = AggFunc::kCount;
    else if (PeekKeyword("sum")) agg = AggFunc::kSum;
    else if (PeekKeyword("avg")) agg = AggFunc::kAvg;
    else if (PeekKeyword("max")) agg = AggFunc::kMax;
    else if (PeekKeyword("min")) agg = AggFunc::kMin;

    if (agg != AggFunc::kNone && Peek(1).kind == TokKind::kSymbol &&
        Peek(1).text == "(") {
      Advance();  // aggregate keyword
      Advance();  // '('
      item.agg = agg;
      if (AcceptSymbol("*")) {
        if (agg != AggFunc::kCount) {
          return Status(StatusCode::kParseError, "only COUNT accepts '*'");
        }
        item.star = true;
      } else {
        E3D_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      E3D_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (PeekSymbol("*")) {
      return Status(StatusCode::kUnsupported,
                    "SELECT * is not supported; name the columns");
    } else {
      E3D_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (AcceptKeyword("as")) {
      if (Peek().kind != TokKind::kIdent) return Err("expected alias");
      item.alias = Advance().text;
    }
    return item;
  }

  Result<std::string> ParseColumnName() {
    if (Peek().kind != TokKind::kIdent) {
      return Status(StatusCode::kParseError, "expected column name");
    }
    std::string name = Advance().text;
    if (AcceptSymbol(".")) {
      if (Peek().kind != TokKind::kIdent) {
        return Status(StatusCode::kParseError,
                      "expected column after '.'");
      }
      name += "." + Advance().text;
    }
    return name;
  }

  Result<std::shared_ptr<const TableRef>> ParseTableRef() {
    E3D_ASSIGN_OR_RETURN(std::shared_ptr<const TableRef> left,
                         ParseTablePrimary());
    for (;;) {
      if (AcceptKeyword("join")) {
        E3D_ASSIGN_OR_RETURN(std::shared_ptr<const TableRef> right,
                             ParseTablePrimary());
        E3D_RETURN_IF_ERROR(ExpectKeyword("on"));
        E3D_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        left = TableRef::Join(left, right, cond);
      } else if (PeekSymbol(",")) {
        // Comma-join: only treat as a join when followed by a table
        // primary (an identifier or a parenthesized SELECT).
        Advance();
        E3D_ASSIGN_OR_RETURN(std::shared_ptr<const TableRef> right,
                             ParseTablePrimary());
        left = TableRef::Join(left, right, nullptr);
      } else {
        break;
      }
    }
    return left;
  }

  Result<std::shared_ptr<const TableRef>> ParseTablePrimary() {
    if (AcceptSymbol("(")) {
      E3D_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelect());
      E3D_RETURN_IF_ERROR(ExpectSymbol(")"));
      std::string alias;
      if (Peek().kind == TokKind::kIdent && !IsKeywordText(Peek().text)) {
        alias = Advance().text;
      }
      if (alias.empty()) {
        return Status(StatusCode::kParseError,
                      "FROM subquery requires an alias");
      }
      return TableRef::Subquery(sub, alias);
    }
    if (Peek().kind != TokKind::kIdent) return Err("expected table name");
    std::string name = Advance().text;
    std::string alias;
    if (Peek().kind == TokKind::kIdent && !IsKeywordText(Peek().text)) {
      alias = Advance().text;
    }
    return TableRef::Base(name, alias);
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    E3D_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("or")) {
      E3D_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    E3D_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("and")) {
      E3D_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("not") && !(Peek(1).kind == TokKind::kIdent &&
                                IEq(Peek(1).text, "exists"))) {
      Advance();
      E3D_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Expr::Unary(UnaryOp::kNot, inner);
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    // EXISTS / NOT EXISTS.
    bool not_exists = false;
    if (PeekKeyword("not") && Peek(1).kind == TokKind::kIdent &&
        IEq(Peek(1).text, "exists")) {
      Advance();
      not_exists = true;
    }
    if (AcceptKeyword("exists")) {
      E3D_RETURN_IF_ERROR(ExpectSymbol("("));
      E3D_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelect());
      E3D_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Expr::Exists(sub, not_exists);
    }

    E3D_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    // IS [NOT] NULL
    if (AcceptKeyword("is")) {
      bool neg = AcceptKeyword("not");
      E3D_RETURN_IF_ERROR(ExpectKeyword("null"));
      return Expr::IsNull(lhs, neg);
    }

    // [NOT] IN / [NOT] LIKE
    bool neg = false;
    if (PeekKeyword("not") && Peek(1).kind == TokKind::kIdent &&
        (IEq(Peek(1).text, "in") || IEq(Peek(1).text, "like"))) {
      Advance();
      neg = true;
    }
    if (AcceptKeyword("in")) {
      E3D_RETURN_IF_ERROR(ExpectSymbol("("));
      if (PeekKeyword("select")) {
        E3D_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelect());
        E3D_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Expr::InSubquery(lhs, sub, neg);
      }
      std::vector<Value> list;
      do {
        E3D_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        list.push_back(std::move(v));
      } while (AcceptSymbol(","));
      E3D_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Expr::InList(lhs, std::move(list), neg);
    }
    if (AcceptKeyword("like")) {
      E3D_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr like = Expr::Binary(BinaryOp::kLike, lhs, rhs);
      return neg ? Expr::Unary(UnaryOp::kNot, like) : like;
    }
    if (neg) return Err("dangling NOT");

    // Comparison.
    struct CmpMap {
      const char* sym;
      BinaryOp op;
    };
    static const CmpMap kCmps[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe},
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const CmpMap& cm : kCmps) {
      if (PeekSymbol(cm.sym)) {
        Advance();
        E3D_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Expr::Binary(cm.op, lhs, rhs);
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    E3D_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (AcceptSymbol("+")) {
        E3D_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Binary(BinaryOp::kAdd, lhs, rhs);
      } else if (AcceptSymbol("-")) {
        E3D_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Binary(BinaryOp::kSub, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    E3D_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      if (AcceptSymbol("*")) {
        E3D_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kMul, lhs, rhs);
      } else if (AcceptSymbol("/")) {
        E3D_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kDiv, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      E3D_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, inner);
    }
    return ParseAtom();
  }

  Result<Value> ParseLiteralValue() {
    const Token& t = Peek();
    if (t.kind == TokKind::kNumber) {
      Advance();
      if (t.is_int) return Value(t.int_value);
      return Value(t.number);
    }
    if (t.kind == TokKind::kString) {
      Advance();
      return Value(t.text);
    }
    if (PeekKeyword("null")) {
      Advance();
      return Value::Null();
    }
    if (PeekSymbol("-") && Peek(1).kind == TokKind::kNumber) {
      Advance();
      const Token& num = Advance();
      if (num.is_int) return Value(-num.int_value);
      return Value(-num.number);
    }
    return Status(StatusCode::kParseError, "expected literal");
  }

  Result<ExprPtr> ParseAtom() {
    const Token& t = Peek();
    if (t.kind == TokKind::kNumber || t.kind == TokKind::kString ||
        PeekKeyword("null")) {
      E3D_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      return Expr::Literal(std::move(v));
    }
    if (AcceptSymbol("(")) {
      E3D_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      E3D_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind == TokKind::kIdent && !IsKeywordText(t.text)) {
      E3D_ASSIGN_OR_RETURN(std::string name, ParseColumnName());
      return Expr::Column(std::move(name));
    }
    return Err("expected literal, column, or '('");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmtPtr> ParseSql(const std::string& sql) {
  std::vector<Token> toks;
  Lexer lexer(sql);
  Status st = lexer.Tokenize(&toks);
  if (!st.ok()) return st;
  Parser parser(std::move(toks));
  return parser.ParseSelectStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  std::vector<Token> toks;
  Lexer lexer(text);
  Status st = lexer.Tokenize(&toks);
  if (!st.ok()) return st;
  Parser parser(std::move(toks));
  return parser.ParseStandaloneExpression();
}

}  // namespace explain3d
