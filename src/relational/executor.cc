#include "relational/executor.h"

#include <algorithm>
#include <map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "relational/parser.h"
#include "relational/planner.h"

namespace explain3d {

namespace {

struct RowKeyHash {
  size_t operator()(const Row& r) const {
    size_t h = 0x2545f4914f6cdd1dULL;
    for (const Value& v : r) h = HashCombine(h, v.Hash());
    return h;
  }
};

struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// ExprEvaluator
// ---------------------------------------------------------------------------

ExprEvaluator::ExprEvaluator(const Database* db, const Schema* schema)
    : db_(db), schema_(schema) {}

Result<size_t> ExprEvaluator::ResolveCached(const std::string& name) {
  auto it = resolve_cache_.find(name);
  if (it != resolve_cache_.end()) return it->second;
  E3D_ASSIGN_OR_RETURN(size_t idx, schema_->Resolve(name));
  resolve_cache_.emplace(name, idx);
  return idx;
}

Result<const std::unordered_set<Value, ValueHash>*>
ExprEvaluator::SubqueryValueSet(const SelectStmt& stmt) {
  auto it = subquery_cache_.find(&stmt);
  if (it != subquery_cache_.end()) return &it->second;
  Executor exec(db_);
  E3D_ASSIGN_OR_RETURN(Table result, exec.Execute(stmt));
  if (result.num_columns() < 1) {
    return Status::InvalidArgument("IN subquery produces no columns");
  }
  std::unordered_set<Value, ValueHash> values;
  for (const Row& row : result.rows()) {
    if (!row[0].is_null()) values.insert(row[0]);
  }
  auto [pos, inserted] = subquery_cache_.emplace(&stmt, std::move(values));
  (void)inserted;
  return &pos->second;
}

Result<bool> ExprEvaluator::EvalBool(const Expr& e, const Row& row) {
  E3D_ASSIGN_OR_RETURN(Value v, Eval(e, row));
  if (v.is_null()) return false;
  if (v.is_numeric()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

Result<Value> ExprEvaluator::Eval(const Expr& e, const Row& row) {
  switch (e.kind()) {
    case Expr::Kind::kLiteral:
      return e.literal();

    case Expr::Kind::kColumn: {
      E3D_ASSIGN_OR_RETURN(size_t idx, ResolveCached(e.column_name()));
      return row[idx];
    }

    case Expr::Kind::kBinary: {
      BinaryOp op = e.binary_op();
      if (op == BinaryOp::kAnd) {
        E3D_ASSIGN_OR_RETURN(bool l, EvalBool(*e.lhs(), row));
        if (!l) return Value(int64_t{0});
        E3D_ASSIGN_OR_RETURN(bool r, EvalBool(*e.rhs(), row));
        return Value(int64_t{r ? 1 : 0});
      }
      if (op == BinaryOp::kOr) {
        E3D_ASSIGN_OR_RETURN(bool l, EvalBool(*e.lhs(), row));
        if (l) return Value(int64_t{1});
        E3D_ASSIGN_OR_RETURN(bool r, EvalBool(*e.rhs(), row));
        return Value(int64_t{r ? 1 : 0});
      }
      E3D_ASSIGN_OR_RETURN(Value l, Eval(*e.lhs(), row));
      E3D_ASSIGN_OR_RETURN(Value r, Eval(*e.rhs(), row));
      switch (op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          if (l.is_null() || r.is_null()) return Value::Null();
          int c = l.Compare(r);
          bool result = false;
          switch (op) {
            case BinaryOp::kEq: result = c == 0; break;
            case BinaryOp::kNe: result = c != 0; break;
            case BinaryOp::kLt: result = c < 0; break;
            case BinaryOp::kLe: result = c <= 0; break;
            case BinaryOp::kGt: result = c > 0; break;
            default: result = c >= 0; break;
          }
          return Value(int64_t{result ? 1 : 0});
        }
        case BinaryOp::kLike: {
          if (l.is_null() || r.is_null()) return Value::Null();
          if (l.type() != DataType::kString ||
              r.type() != DataType::kString) {
            return Value(int64_t{0});
          }
          return Value(
              int64_t{SqlLikeMatch(l.AsString(), r.AsString()) ? 1 : 0});
        }
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv: {
          if (l.is_null() || r.is_null()) return Value::Null();
          if (!l.is_numeric() || !r.is_numeric()) {
            return Status::InvalidArgument(
                "arithmetic on non-numeric values: " + e.ToString());
          }
          bool both_int = l.type() == DataType::kInt64 &&
                          r.type() == DataType::kInt64 &&
                          op != BinaryOp::kDiv;
          if (both_int) {
            int64_t a = l.AsInt64(), b = r.AsInt64();
            switch (op) {
              case BinaryOp::kAdd: return Value(a + b);
              case BinaryOp::kSub: return Value(a - b);
              default: return Value(a * b);
            }
          }
          double a = l.AsDouble(), b = r.AsDouble();
          switch (op) {
            case BinaryOp::kAdd: return Value(a + b);
            case BinaryOp::kSub: return Value(a - b);
            case BinaryOp::kMul: return Value(a * b);
            default:
              if (b == 0.0) return Value::Null();
              return Value(a / b);
          }
        }
        default:
          return Status::Internal("unhandled binary op");
      }
    }

    case Expr::Kind::kUnary: {
      if (e.unary_op() == UnaryOp::kNot) {
        E3D_ASSIGN_OR_RETURN(bool b, EvalBool(*e.lhs(), row));
        return Value(int64_t{b ? 0 : 1});
      }
      E3D_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs(), row));
      if (v.is_null()) return Value::Null();
      if (v.type() == DataType::kInt64) return Value(-v.AsInt64());
      if (v.type() == DataType::kDouble) return Value(-v.AsDouble());
      return Status::InvalidArgument("negation of non-numeric value");
    }

    case Expr::Kind::kInList: {
      E3D_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs(), row));
      if (v.is_null()) return Value::Null();
      bool found = false;
      for (const Value& item : e.in_list()) {
        if (v.Compare(item) == 0) {
          found = true;
          break;
        }
      }
      bool result = e.negated() ? !found : found;
      return Value(int64_t{result ? 1 : 0});
    }

    case Expr::Kind::kInSubquery: {
      E3D_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs(), row));
      if (v.is_null()) return Value::Null();
      E3D_ASSIGN_OR_RETURN(const auto* set, SubqueryValueSet(*e.subquery()));
      bool found = set->count(v) > 0;
      bool result = e.negated() ? !found : found;
      return Value(int64_t{result ? 1 : 0});
    }

    case Expr::Kind::kExists: {
      E3D_ASSIGN_OR_RETURN(const auto* set, SubqueryValueSet(*e.subquery()));
      // Non-null first-column values stand in for row existence; the
      // supported fragment never selects all-NULL columns in EXISTS.
      bool exists = !set->empty();
      bool result = e.negated() ? !exists : exists;
      return Value(int64_t{result ? 1 : 0});
    }

    case Expr::Kind::kIsNull: {
      E3D_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs(), row));
      bool isnull = v.is_null();
      bool result = e.negated() ? !isnull : isnull;
      return Value(int64_t{result ? 1 : 0});
    }
  }
  return Status::Internal("unhandled expression kind");
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Result<Table> Executor::ExecuteSql(const std::string& sql) const {
  E3D_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSql(sql));
  return Execute(*stmt);
}

Result<Table> Executor::EvalTableRef(const TableRef& ref) const {
  switch (ref.kind) {
    case TableRef::Kind::kBase: {
      E3D_ASSIGN_OR_RETURN(const Table* src, db_->GetTable(ref.table_name));
      Table out(ref.QualifierName(),
                src->schema().Qualified(ref.QualifierName()));
      for (const Row& row : src->rows()) out.AppendUnchecked(row);
      return out;
    }
    case TableRef::Kind::kSubquery: {
      E3D_ASSIGN_OR_RETURN(Table inner, Execute(*ref.subquery));
      Table out(ref.alias, inner.schema().Qualified(ref.alias));
      for (const Row& row : inner.rows()) out.AppendUnchecked(row);
      return out;
    }
    case TableRef::Kind::kJoin:
      return EvalJoin(ref);
  }
  return Status::Internal("unhandled TableRef kind");
}

Result<Table> Executor::EvalJoin(const TableRef& ref) const {
  E3D_ASSIGN_OR_RETURN(Table left, EvalTableRef(*ref.left));
  E3D_ASSIGN_OR_RETURN(Table right, EvalTableRef(*ref.right));

  Schema joined;
  for (const Column& c : left.schema().columns()) joined.AddColumn(c);
  for (const Column& c : right.schema().columns()) joined.AddColumn(c);
  Table out("", joined);

  // Partition the ON condition into hashable equi-conjuncts and residuals.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(ref.condition, &conjuncts);
  std::vector<std::pair<size_t, size_t>> equi;  // (left col, right col)
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    bool is_equi = false;
    if (c->kind() == Expr::Kind::kBinary &&
        c->binary_op() == BinaryOp::kEq &&
        c->lhs()->kind() == Expr::Kind::kColumn &&
        c->rhs()->kind() == Expr::Kind::kColumn) {
      Result<size_t> ll = left.schema().Resolve(c->lhs()->column_name());
      Result<size_t> rr = right.schema().Resolve(c->rhs()->column_name());
      if (ll.ok() && rr.ok()) {
        equi.emplace_back(ll.value(), rr.value());
        is_equi = true;
      } else {
        Result<size_t> lr = left.schema().Resolve(c->rhs()->column_name());
        Result<size_t> rl = right.schema().Resolve(c->lhs()->column_name());
        if (lr.ok() && rl.ok()) {
          equi.emplace_back(lr.value(), rl.value());
          is_equi = true;
        }
      }
    }
    if (!is_equi) residual.push_back(c);
  }

  ExprPtr residual_cond = CombineConjuncts(residual);
  ExprEvaluator joined_eval(db_, &out.schema());

  auto emit = [&](const Row& l, const Row& r) -> Result<Value> {
    Row combined;
    combined.reserve(l.size() + r.size());
    combined.insert(combined.end(), l.begin(), l.end());
    combined.insert(combined.end(), r.begin(), r.end());
    if (residual_cond) {
      E3D_ASSIGN_OR_RETURN(bool keep,
                           joined_eval.EvalBool(*residual_cond, combined));
      if (!keep) return Value(int64_t{0});
    }
    out.AppendUnchecked(std::move(combined));
    return Value(int64_t{1});
  };

  if (!equi.empty()) {
    // Hash join keyed on the right-side columns of every equi conjunct.
    std::unordered_map<Row, std::vector<size_t>, RowKeyHash, RowKeyEq> built;
    built.reserve(right.num_rows() * 2);
    for (size_t i = 0; i < right.num_rows(); ++i) {
      Row key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const auto& [lc, rc] : equi) {
        (void)lc;
        const Value& v = right.row(i)[rc];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (has_null) continue;  // NULL keys never match in SQL joins
      built[std::move(key)].push_back(i);
    }
    for (size_t i = 0; i < left.num_rows(); ++i) {
      Row key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const auto& [lc, rc] : equi) {
        (void)rc;
        const Value& v = left.row(i)[lc];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (has_null) continue;
      auto it = built.find(key);
      if (it == built.end()) continue;
      for (size_t j : it->second) {
        E3D_ASSIGN_OR_RETURN(Value ignored, emit(left.row(i), right.row(j)));
        (void)ignored;
      }
    }
    return out;
  }

  // Nested-loop fallback (cross join or non-equi condition).
  for (size_t i = 0; i < left.num_rows(); ++i) {
    for (size_t j = 0; j < right.num_rows(); ++j) {
      E3D_ASSIGN_OR_RETURN(Value ignored, emit(left.row(i), right.row(j)));
      (void)ignored;
    }
  }
  return out;
}

Result<Table> Executor::EvaluateFromWhere(const SelectStmt& stmt) const {
  if (!stmt.from) {
    return Status::InvalidArgument("statement has no FROM clause");
  }
  E3D_ASSIGN_OR_RETURN(SelectStmtPtr optimized,
                       PushDownPredicates(*db_, stmt));
  E3D_ASSIGN_OR_RETURN(Table input, EvalTableRef(*optimized->from));
  if (!optimized->where) {
    input.set_name("provenance");
    return input;
  }
  Table out("provenance", input.schema());
  ExprEvaluator eval(db_, &input.schema());
  for (const Row& row : input.rows()) {
    E3D_ASSIGN_OR_RETURN(bool keep, eval.EvalBool(*optimized->where, row));
    if (keep) out.AppendUnchecked(row);
  }
  return out;
}

Result<Table> Executor::Aggregate(const SelectStmt& stmt,
                                  const Table& input) const {
  // Resolve GROUP BY columns.
  std::vector<size_t> group_cols;
  for (const std::string& name : stmt.group_by) {
    E3D_ASSIGN_OR_RETURN(size_t idx, input.schema().Resolve(name));
    group_cols.push_back(idx);
  }

  // Group rows. A single implicit group when GROUP BY is absent.
  std::map<Row, std::vector<size_t>, decltype(&RowLess)> groups(&RowLess);
  for (size_t i = 0; i < input.num_rows(); ++i) {
    Row key;
    key.reserve(group_cols.size());
    for (size_t c : group_cols) key.push_back(input.row(i)[c]);
    groups[std::move(key)].push_back(i);
  }
  if (groups.empty() && stmt.group_by.empty()) {
    groups[{}] = {};  // aggregates over an empty relation yield one row
  }

  // Output schema.
  Schema out_schema;
  for (const SelectItem& item : stmt.items) {
    DataType type = DataType::kString;
    switch (item.agg) {
      case AggFunc::kCount:
        type = DataType::kInt64;
        break;
      case AggFunc::kAvg:
        type = DataType::kDouble;
        break;
      case AggFunc::kSum:
      case AggFunc::kMax:
      case AggFunc::kMin:
        type = DataType::kDouble;
        break;
      case AggFunc::kNone:
        if (item.expr->kind() == Expr::Kind::kColumn) {
          Result<size_t> idx =
              input.schema().Resolve(item.expr->column_name());
          if (idx.ok()) type = input.schema().column(idx.value()).type;
        }
        break;
    }
    out_schema.AddColumn(Column(item.OutputName(), type));
  }

  Table out("", out_schema);
  ExprEvaluator eval(db_, &input.schema());

  for (const auto& [key, row_ids] : groups) {
    (void)key;
    Row out_row;
    for (const SelectItem& item : stmt.items) {
      if (item.agg == AggFunc::kNone) {
        // Plain item in an aggregate query: evaluated on the group's first
        // row; the supported fragment requires it to be a GROUP BY column.
        if (row_ids.empty()) {
          out_row.push_back(Value::Null());
        } else {
          E3D_ASSIGN_OR_RETURN(Value v,
                               eval.Eval(*item.expr, input.row(row_ids[0])));
          out_row.push_back(std::move(v));
        }
        continue;
      }
      // Gather input values for the aggregate.
      int64_t count = 0;
      bool all_int = true;
      int64_t sum_int = 0;
      double sum_dbl = 0;
      Value best;  // for MAX/MIN
      for (size_t rid : row_ids) {
        Value v;
        if (item.star) {
          v = Value(int64_t{1});
        } else {
          E3D_ASSIGN_OR_RETURN(v, eval.Eval(*item.expr, input.row(rid)));
        }
        if (v.is_null()) continue;
        ++count;
        if (item.agg == AggFunc::kMax) {
          if (best.is_null() || v.Compare(best) > 0) best = v;
          continue;
        }
        if (item.agg == AggFunc::kMin) {
          if (best.is_null() || v.Compare(best) < 0) best = v;
          continue;
        }
        if (item.agg == AggFunc::kSum || item.agg == AggFunc::kAvg) {
          if (!v.is_numeric()) {
            return Status::InvalidArgument("SUM/AVG over non-numeric column");
          }
          if (v.type() == DataType::kInt64) {
            sum_int += v.AsInt64();
          } else {
            all_int = false;
          }
          sum_dbl += v.AsDouble();
        }
      }
      switch (item.agg) {
        case AggFunc::kCount:
          out_row.push_back(Value(count));
          break;
        case AggFunc::kSum:
          if (count == 0) {
            out_row.push_back(Value::Null());
          } else if (all_int) {
            out_row.push_back(Value(sum_int));
          } else {
            out_row.push_back(Value(sum_dbl));
          }
          break;
        case AggFunc::kAvg:
          out_row.push_back(count == 0
                                ? Value::Null()
                                : Value(sum_dbl / static_cast<double>(count)));
          break;
        case AggFunc::kMax:
        case AggFunc::kMin:
          out_row.push_back(best);
          break;
        case AggFunc::kNone:
          break;  // handled above
      }
    }
    out.AppendUnchecked(std::move(out_row));
  }
  return out;
}

Result<Table> Executor::Project(const SelectStmt& stmt,
                                const Table& input) const {
  Schema out_schema;
  for (const SelectItem& item : stmt.items) {
    DataType type = DataType::kString;
    if (item.expr->kind() == Expr::Kind::kColumn) {
      Result<size_t> idx = input.schema().Resolve(item.expr->column_name());
      if (idx.ok()) type = input.schema().column(idx.value()).type;
    }
    out_schema.AddColumn(Column(item.OutputName(), type));
  }
  Table out("", out_schema);
  ExprEvaluator eval(db_, &input.schema());
  for (const Row& row : input.rows()) {
    Row out_row;
    out_row.reserve(stmt.items.size());
    for (const SelectItem& item : stmt.items) {
      E3D_ASSIGN_OR_RETURN(Value v, eval.Eval(*item.expr, row));
      out_row.push_back(std::move(v));
    }
    out.AppendUnchecked(std::move(out_row));
  }
  if (stmt.distinct) {
    std::vector<Row> rows = out.rows();
    std::sort(rows.begin(), rows.end(), RowLess);
    rows.erase(std::unique(rows.begin(), rows.end(),
                           [](const Row& a, const Row& b) {
                             return !RowLess(a, b) && !RowLess(b, a);
                           }),
               rows.end());
    Table deduped("", out.schema());
    for (Row& r : rows) deduped.AppendUnchecked(std::move(r));
    return deduped;
  }
  return out;
}

Result<Table> Executor::Execute(const SelectStmt& stmt) const {
  E3D_ASSIGN_OR_RETURN(Table filtered, EvaluateFromWhere(stmt));
  if (stmt.HasAggregate() || !stmt.group_by.empty()) {
    return Aggregate(stmt, filtered);
  }
  return Project(stmt, filtered);
}

Result<Value> Executor::ExecuteScalar(const SelectStmt& stmt) const {
  E3D_ASSIGN_OR_RETURN(Table result, Execute(stmt));
  if (result.num_rows() == 0 || result.num_columns() == 0) {
    return Value::Null();
  }
  return result.row(0)[0];
}

Result<Value> Executor::ExecuteScalarSql(const std::string& sql) const {
  E3D_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSql(sql));
  return ExecuteScalar(*stmt);
}

}  // namespace explain3d
