// CSV import/export for tables (RFC-4180-style quoting).
//
// Used by examples to ship the academic datasets as plain files and by the
// bench harness to dump generated workloads for inspection.

#ifndef EXPLAIN3D_RELATIONAL_CSV_H_
#define EXPLAIN3D_RELATIONAL_CSV_H_

#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace explain3d {

/// Parses CSV text into a table. The first record is the header; each
/// header cell may carry an optional type suffix "name:int", "name:real",
/// "name:str" (default str). Empty cells become NULL.
Result<Table> ParseCsv(const std::string& name, const std::string& text);

/// Reads a CSV file via ParseCsv. The table is named after `name`.
Result<Table> LoadCsvFile(const std::string& name, const std::string& path);

/// Serializes a table to CSV text with typed header suffixes, such that
/// ParseCsv round-trips it.
std::string ToCsv(const Table& table);

/// Writes ToCsv(table) to `path`.
Status SaveCsvFile(const Table& table, const std::string& path);

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_CSV_H_
