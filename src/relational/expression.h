// Scalar expression AST for the SQL subset.
//
// Expressions cover the paper's condition language C in Q = π_o σ_C(X):
// comparisons, boolean connectives, arithmetic, LIKE, IS NULL, IN over a
// literal list or an (uncorrelated) subquery, and EXISTS. Evaluation lives
// in the executor (executor.h) because subqueries need database access.

#ifndef EXPLAIN3D_RELATIONAL_EXPRESSION_H_
#define EXPLAIN3D_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace explain3d {

struct SelectStmt;  // query.h

/// Binary operator tag.
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLike,
};

/// Unary operator tag.
enum class UnaryOp { kNot, kNeg };

const char* BinaryOpName(BinaryOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Construct via the static factories; shared
/// ownership lets query rewrites reuse subtrees.
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kColumn,
    kBinary,
    kUnary,
    kInList,
    kInSubquery,
    kExists,
    kIsNull,
  };

  static ExprPtr Literal(Value v);
  static ExprPtr Column(std::string name);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  /// `operand IN (v1, v2, ...)`; `negated` for NOT IN.
  static ExprPtr InList(ExprPtr operand, std::vector<Value> list,
                        bool negated);
  /// `operand IN (SELECT ...)`; the subquery must be uncorrelated and
  /// produce a single column.
  static ExprPtr InSubquery(ExprPtr operand,
                            std::shared_ptr<const SelectStmt> subquery,
                            bool negated);
  /// `EXISTS (SELECT ...)`, uncorrelated.
  static ExprPtr Exists(std::shared_ptr<const SelectStmt> subquery,
                        bool negated);
  /// `operand IS [NOT] NULL`.
  static ExprPtr IsNull(ExprPtr operand, bool negated);

  // Convenience builders used heavily by generators and tests.
  static ExprPtr Eq(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kEq, std::move(l), std::move(r));
  }
  static ExprPtr ColEqVal(const std::string& col, Value v) {
    return Eq(Column(col), Literal(std::move(v)));
  }
  static ExprPtr And(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kAnd, std::move(l), std::move(r));
  }

  Kind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  const std::string& column_name() const { return column_name_; }
  BinaryOp binary_op() const { return binary_op_; }
  UnaryOp unary_op() const { return unary_op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  const std::vector<Value>& in_list() const { return in_list_; }
  const std::shared_ptr<const SelectStmt>& subquery() const {
    return subquery_;
  }
  bool negated() const { return negated_; }

  /// SQL-ish rendering for debugging and query display.
  std::string ToString() const;

  /// Collects the names of all columns referenced by this expression tree
  /// (subqueries excluded; they reference their own scope).
  void CollectColumns(std::vector<std::string>* out) const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteral;
  Value literal_;
  std::string column_name_;
  BinaryOp binary_op_ = BinaryOp::kEq;
  UnaryOp unary_op_ = UnaryOp::kNot;
  ExprPtr lhs_;
  ExprPtr rhs_;
  std::vector<Value> in_list_;
  std::shared_ptr<const SelectStmt> subquery_;
  bool negated_ = false;
};

/// True when `text` matches the SQL LIKE `pattern` ('%' = any run,
/// '_' = any single char). Matching is case-insensitive, mirroring the
/// collation most engines use for LIKE on ASCII data.
bool SqlLikeMatch(const std::string& text, const std::string& pattern);

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_EXPRESSION_H_
