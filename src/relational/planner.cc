#include "relational/planner.h"

#include <unordered_map>

namespace explain3d {

namespace {

/// Derives the (name-only) output schema of a FROM node. Types are not
/// needed for pushdown decisions, so subquery items default to kString.
class SchemaDeriver {
 public:
  explicit SchemaDeriver(const Database& db) : db_(db) {}

  Result<Schema> Derive(const TableRef& ref) {
    auto it = cache_.find(&ref);
    if (it != cache_.end()) return it->second;
    Schema schema;
    switch (ref.kind) {
      case TableRef::Kind::kBase: {
        E3D_ASSIGN_OR_RETURN(const Table* t, db_.GetTable(ref.table_name));
        schema = t->schema().Qualified(ref.QualifierName());
        break;
      }
      case TableRef::Kind::kSubquery: {
        for (const SelectItem& item : ref.subquery->items) {
          schema.AddColumn(
              Column(ref.alias + "." + item.OutputName(), DataType::kString));
        }
        break;
      }
      case TableRef::Kind::kJoin: {
        E3D_ASSIGN_OR_RETURN(Schema left, Derive(*ref.left));
        E3D_ASSIGN_OR_RETURN(Schema right, Derive(*ref.right));
        for (const Column& c : left.columns()) schema.AddColumn(c);
        for (const Column& c : right.columns()) schema.AddColumn(c);
        break;
      }
    }
    cache_.emplace(&ref, schema);
    return schema;
  }

 private:
  const Database& db_;
  std::unordered_map<const TableRef*, Schema> cache_;
};

bool Covers(const Schema& schema, const ExprPtr& conjunct) {
  std::vector<std::string> cols;
  conjunct->CollectColumns(&cols);
  for (const std::string& c : cols) {
    if (!schema.Has(c)) return false;
  }
  return true;
}

/// Rewrites `ref` bottom-up, consuming from `pending` every conjunct whose
/// columns the (sub)tree covers; consumed conjuncts are attached to the
/// nearest enclosing join condition.
Result<std::shared_ptr<const TableRef>> PushInto(
    const std::shared_ptr<const TableRef>& ref,
    std::vector<ExprPtr>* pending, SchemaDeriver* deriver) {
  if (ref->kind != TableRef::Kind::kJoin) return ref;

  E3D_ASSIGN_OR_RETURN(std::shared_ptr<const TableRef> left,
                       PushInto(ref->left, pending, deriver));
  E3D_ASSIGN_OR_RETURN(std::shared_ptr<const TableRef> right,
                       PushInto(ref->right, pending, deriver));

  E3D_ASSIGN_OR_RETURN(Schema here, deriver->Derive(*ref));
  std::vector<ExprPtr> attach;
  std::vector<ExprPtr> still_pending;
  for (ExprPtr& c : *pending) {
    if (Covers(here, c)) {
      attach.push_back(std::move(c));
    } else {
      still_pending.push_back(std::move(c));
    }
  }
  *pending = std::move(still_pending);

  ExprPtr condition = ref->condition;
  if (!attach.empty()) {
    ExprPtr extra = CombineConjuncts(attach);
    condition = condition ? Expr::And(condition, extra) : extra;
  }
  return TableRef::Join(left, right, condition);
}

}  // namespace

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (!expr) return;
  if (expr->kind() == Expr::Kind::kBinary &&
      expr->binary_op() == BinaryOp::kAnd) {
    SplitConjuncts(expr->lhs(), out);
    SplitConjuncts(expr->rhs(), out);
    return;
  }
  out->push_back(expr);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr combined;
  for (const ExprPtr& c : conjuncts) {
    combined = combined ? Expr::And(combined, c) : c;
  }
  return combined;
}

Result<SelectStmtPtr> PushDownPredicates(const Database& db,
                                         const SelectStmt& stmt) {
  if (!stmt.from || stmt.from->kind != TableRef::Kind::kJoin ||
      !stmt.where) {
    return SelectStmtPtr(std::make_shared<SelectStmt>(stmt));
  }
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(stmt.where, &conjuncts);

  SchemaDeriver deriver(db);
  std::vector<ExprPtr> pending = conjuncts;
  Result<std::shared_ptr<const TableRef>> pushed =
      PushInto(stmt.from, &pending, &deriver);
  if (!pushed.ok()) {
    // Schema derivation failed (e.g., missing table); leave the statement
    // untouched and let execution surface the error.
    return SelectStmtPtr(std::make_shared<SelectStmt>(stmt));
  }

  auto out = std::make_shared<SelectStmt>(stmt);
  out->from = pushed.value();
  out->where = CombineConjuncts(pending);
  return SelectStmtPtr(out);
}

}  // namespace explain3d
