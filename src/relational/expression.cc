#include "relational/expression.h"

#include <cctype>

#include "relational/query.h"

namespace explain3d {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBinary;
  e->binary_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kUnary;
  e->unary_op_ = op;
  e->lhs_ = std::move(operand);
  return e;
}

ExprPtr Expr::InList(ExprPtr operand, std::vector<Value> list, bool negated) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kInList;
  e->lhs_ = std::move(operand);
  e->in_list_ = std::move(list);
  e->negated_ = negated;
  return e;
}

ExprPtr Expr::InSubquery(ExprPtr operand,
                         std::shared_ptr<const SelectStmt> subquery,
                         bool negated) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kInSubquery;
  e->lhs_ = std::move(operand);
  e->subquery_ = std::move(subquery);
  e->negated_ = negated;
  return e;
}

ExprPtr Expr::Exists(std::shared_ptr<const SelectStmt> subquery,
                     bool negated) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kExists;
  e->subquery_ = std::move(subquery);
  e->negated_ = negated;
  return e;
}

ExprPtr Expr::IsNull(ExprPtr operand, bool negated) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kIsNull;
  e->lhs_ = std::move(operand);
  e->negated_ = negated;
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kColumn:
      return column_name_;
    case Kind::kBinary:
      return "(" + lhs_->ToString() + " " + BinaryOpName(binary_op_) + " " +
             rhs_->ToString() + ")";
    case Kind::kUnary:
      return unary_op_ == UnaryOp::kNot ? "NOT (" + lhs_->ToString() + ")"
                                        : "-(" + lhs_->ToString() + ")";
    case Kind::kInList: {
      std::string s = lhs_->ToString();
      s += negated_ ? " NOT IN (" : " IN (";
      for (size_t i = 0; i < in_list_.size(); ++i) {
        if (i > 0) s += ", ";
        s += in_list_[i].ToString();
      }
      return s + ")";
    }
    case Kind::kInSubquery:
      return lhs_->ToString() + (negated_ ? " NOT IN (" : " IN (") +
             subquery_->ToSql() + ")";
    case Kind::kExists:
      return std::string(negated_ ? "NOT " : "") + "EXISTS (" +
             subquery_->ToSql() + ")";
    case Kind::kIsNull:
      return lhs_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }
  return "?";
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kColumn:
      out->push_back(column_name_);
      return;
    case Kind::kBinary:
      lhs_->CollectColumns(out);
      rhs_->CollectColumns(out);
      return;
    case Kind::kUnary:
    case Kind::kInList:
    case Kind::kInSubquery:
    case Kind::kIsNull:
      if (lhs_) lhs_->CollectColumns(out);
      return;
    case Kind::kLiteral:
    case Kind::kExists:
      return;
  }
}

bool SqlLikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  auto eq = [](char a, char b) {
    return std::tolower(static_cast<unsigned char>(a)) ==
           std::tolower(static_cast<unsigned char>(b));
  };
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || eq(pattern[p], text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace explain3d
