#include "relational/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace explain3d {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "row arity %zu does not match schema arity %zu in table '%s'",
        row.size(), schema_.num_columns(), name_.c_str()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Value& Table::Get(size_t row, const std::string& column) const {
  Result<size_t> idx = schema_.Resolve(column);
  E3D_CHECK(idx.ok()) << "Table::Get: " << idx.status().ToString();
  return rows_[row][idx.value()];
}

void Table::Set(size_t row, const std::string& column, Value v) {
  Result<size_t> idx = schema_.Resolve(column);
  E3D_CHECK(idx.ok()) << "Table::Set: " << idx.status().ToString();
  rows_[row][idx.value()] = std::move(v);
}

std::string Table::ToString(size_t max_rows) const {
  size_t ncol = schema_.num_columns();
  std::vector<size_t> width(ncol);
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header(ncol);
  for (size_t c = 0; c < ncol; ++c) {
    header[c] = schema_.column(c).name;
    width[c] = header[c].size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line(ncol);
    for (size_t c = 0; c < ncol; ++c) {
      line[c] = rows_[r][c].ToDisplayString();
      width[c] = std::max(width[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  std::string out = name_.empty() ? "(result)" : name_;
  out += " [" + std::to_string(rows_.size()) + " rows]\n";
  auto emit = [&](const std::vector<std::string>& line) {
    for (size_t c = 0; c < ncol; ++c) {
      out += line[c];
      out.append(width[c] - line[c].size() + 2, ' ');
    }
    out += "\n";
  };
  emit(header);
  for (const auto& line : cells) emit(line);
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more)\n";
  }
  return out;
}

}  // namespace explain3d
