// Light query planner: conjunct splitting and predicate pushdown.
//
// The workloads use comma-joins with join predicates in WHERE
// ("FROM School, Stats WHERE School.ID = Stats.ID AND ..."); evaluating
// the raw AST would materialize a cartesian product. PushDownPredicates
// rewrites the statement so each WHERE conjunct is attached to the
// shallowest FROM node whose schema covers its column references, turning
// cross joins into conditioned (hash-joinable) joins. The rewrite never
// changes the filtered-relation semantics, so provenance derivation can
// run on the optimized plan.

#ifndef EXPLAIN3D_RELATIONAL_PLANNER_H_
#define EXPLAIN3D_RELATIONAL_PLANNER_H_

#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/query.h"

namespace explain3d {

/// Splits an expression into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// AND-combines conjuncts; returns null for an empty list.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

/// Returns a semantically equivalent statement with WHERE conjuncts pushed
/// into the FROM tree where possible. Requires the database to resolve
/// which relation covers which column.
Result<SelectStmtPtr> PushDownPredicates(const Database& db,
                                         const SelectStmt& stmt);

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_PLANNER_H_
