// Schema: ordered, typed, named columns of a relation.
//
// Column names may be qualified ("Movie.title"); resolution accepts an
// unqualified suffix when it is unambiguous, which is what lets one WHERE
// expression run against both a base table and a join result.

#ifndef EXPLAIN3D_RELATIONAL_SCHEMA_H_
#define EXPLAIN3D_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace explain3d {

/// A single column: name plus declared type.
struct Column {
  std::string name;
  DataType type = DataType::kString;

  Column() = default;
  Column(std::string n, DataType t) : name(std::move(n)), type(t) {}

  bool operator==(const Column& o) const {
    return name == o.name && type == o.type;
  }
};

/// Ordered list of columns with name-based lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  /// Appends a column. Duplicate names are allowed only for join results
  /// where qualification disambiguates; AddColumn does not enforce this.
  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Resolves `name` to a column index.
  ///
  /// Matching rules, in order:
  ///  1. exact (case-insensitive) match of the full column name;
  ///  2. unqualified match: `name` equals the segment after the last '.'
  ///     of exactly one column.
  /// Returns NotFound when nothing matches and InvalidArgument when the
  /// unqualified match is ambiguous.
  Result<size_t> Resolve(const std::string& name) const;

  /// True when `name` resolves.
  bool Has(const std::string& name) const { return Resolve(name).ok(); }

  /// Schema with every column renamed to "<qualifier>.<base-name>", where
  /// base-name strips any previous qualifier.
  Schema Qualified(const std::string& qualifier) const;

  /// "name:TYPE, name:TYPE, ..." for debugging.
  std::string ToString() const;

  bool operator==(const Schema& o) const { return columns_ == o.columns_; }

 private:
  std::vector<Column> columns_;
};

/// A row is a vector of Values, positionally aligned with a Schema.
using Row = std::vector<Value>;

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_SCHEMA_H_
