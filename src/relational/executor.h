// Query executor: materializing evaluator for the supported SQL fragment.
//
// Evaluation strategy:
//  * FROM tree is evaluated bottom-up into materialized relations with
//    qualified schemas ("Alias.column").
//  * Equality join conditions run as hash joins; residual conditions and
//    non-equality joins fall back to nested loops.
//  * WHERE conjuncts are pushed down onto cross joins before evaluation
//    (planner.h), so comma-join + WHERE queries do not materialize
//    cartesian products.
//  * Aggregation (SUM/COUNT/AVG/MAX/MIN) with optional GROUP BY runs over
//    the filtered FROM result; this filtered relation is also exactly the
//    provenance relation input of Definition 2.3, exposed via
//    EvaluateFromWhere().
//
// Subqueries in IN/EXISTS must be uncorrelated; they are evaluated once
// and cached per Executor instance.

#ifndef EXPLAIN3D_RELATIONAL_EXECUTOR_H_
#define EXPLAIN3D_RELATIONAL_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "relational/database.h"
#include "relational/query.h"

namespace explain3d {

/// Evaluates expressions against rows of one relation, with database access
/// for subqueries. Resolution results and subquery materializations are
/// cached across rows.
class ExprEvaluator {
 public:
  ExprEvaluator(const Database* db, const Schema* schema);

  /// Evaluates `e` on `row`. Boolean results are int64 0/1; SQL NULL
  /// propagates through comparisons and arithmetic.
  Result<Value> Eval(const Expr& e, const Row& row);

  /// Truthiness for WHERE/ON filtering: NULL and non-true are false.
  Result<bool> EvalBool(const Expr& e, const Row& row);

 private:
  Result<size_t> ResolveCached(const std::string& name);
  Result<const std::unordered_set<Value, ValueHash>*> SubqueryValueSet(
      const SelectStmt& stmt);

  const Database* db_;
  const Schema* schema_;
  std::unordered_map<std::string, size_t> resolve_cache_;
  // Keyed by statement identity; Executor keeps ASTs alive.
  std::unordered_map<const SelectStmt*,
                     std::unordered_set<Value, ValueHash>>
      subquery_cache_;
};

/// Executes SELECT statements against a Database.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// Full evaluation: FROM → WHERE → GROUP/aggregate → projection
  /// (→ DISTINCT).
  Result<Table> Execute(const SelectStmt& stmt) const;

  /// Parses and executes.
  Result<Table> ExecuteSql(const std::string& sql) const;

  /// Evaluates only σ_C(X): the FROM relation filtered by WHERE, before
  /// projection/aggregation. This is the provenance-relation input of
  /// Definition 2.3. The result schema carries qualified column names.
  Result<Table> EvaluateFromWhere(const SelectStmt& stmt) const;

  /// Single scalar result of an aggregate query (first column of the first
  /// row); NULL when the query yields no rows.
  Result<Value> ExecuteScalar(const SelectStmt& stmt) const;
  Result<Value> ExecuteScalarSql(const std::string& sql) const;

 private:
  Result<Table> EvalTableRef(const TableRef& ref) const;
  Result<Table> EvalJoin(const TableRef& ref) const;
  Result<Table> Aggregate(const SelectStmt& stmt, const Table& input) const;
  Result<Table> Project(const SelectStmt& stmt, const Table& input) const;

  const Database* db_;
};

}  // namespace explain3d

#endif  // EXPLAIN3D_RELATIONAL_EXECUTOR_H_
