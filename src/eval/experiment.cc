#include "eval/experiment.h"

#include "baselines/exact_cover.h"
#include "baselines/formalexp.h"
#include "baselines/greedy.h"
#include "baselines/rswoosh.h"
#include "baselines/threshold.h"
#include "common/timer.h"

namespace explain3d {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kExplain3D:
      return "Exp3D";
    case Algorithm::kExplain3DNoOpt:
      return "Exp3D-NoOpt";
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kThreshold09:
      return "Threshold-0.9";
    case Algorithm::kRSwoosh:
      return "Rswoosh";
    case Algorithm::kExactCover:
      return "ExactCover";
    case Algorithm::kFormalExpTop15:
      return "FormalExp-Top15";
  }
  return "?";
}

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kExplain3D,   Algorithm::kGreedy,
          Algorithm::kThreshold09, Algorithm::kRSwoosh,
          Algorithm::kExactCover,  Algorithm::kFormalExpTop15};
}

Result<ExperimentResult> RunAlgorithm(Algorithm algorithm,
                                      const PipelineResult& pipe,
                                      const AttributeMatch& attr,
                                      const GoldStandard& gold,
                                      const Explain3DConfig& config) {
  ExperimentResult out;
  out.algorithm = algorithm;
  Timer timer;
  switch (algorithm) {
    case Algorithm::kExplain3D:
    case Algorithm::kExplain3DNoOpt: {
      Explain3DConfig cfg = config;
      if (algorithm == Algorithm::kExplain3DNoOpt) {
        cfg.batch_size = 0;
        cfg.decompose_components = false;
      }
      Explain3DSolver solver(cfg);
      Explain3DInput input;
      input.t1 = &pipe.t1();
      input.t2 = &pipe.t2();
      input.attr = attr;
      input.mapping = pipe.initial_mapping();
      E3D_ASSIGN_OR_RETURN(Explain3DResult r, solver.Solve(input));
      out.explanations = std::move(r.explanations);
      out.optimal = r.stats.all_optimal;
      break;
    }
    case Algorithm::kGreedy: {
      ProbabilityModel prob(config);
      out.explanations = GreedyBaseline(pipe.t1(), pipe.t2(),
                                        pipe.initial_mapping(), attr, prob);
      break;
    }
    case Algorithm::kThreshold09:
      out.explanations =
          ThresholdBaseline(pipe.t1(), pipe.t2(), pipe.initial_mapping(), 0.9);
      break;
    case Algorithm::kRSwoosh:
      out.explanations = RSwooshBaseline(pipe.t1(), pipe.t2(), 0.75);
      break;
    case Algorithm::kExactCover: {
      E3D_ASSIGN_OR_RETURN(
          out.explanations,
          ExactCoverBaseline(pipe.t1(), pipe.t2(), pipe.initial_mapping()));
      break;
    }
    case Algorithm::kFormalExpTop15: {
      FormalExpOptions fopts;
      fopts.top_k = 15;
      E3D_ASSIGN_OR_RETURN(
          out.explanations,
          FormalExpBaseline(pipe.t1(), pipe.t2(), pipe.p1(), pipe.p2(), fopts));
      break;
    }
  }
  out.algorithm_seconds = timer.Seconds();
  out.total_seconds = out.algorithm_seconds + pipe.stage1_seconds();
  out.accuracy = Evaluate(out.explanations, gold);
  return out;
}

Result<GoldStandard> GoldFromEntityColumns(const PipelineResult& pipe,
                                           const std::string& entity_col1,
                                           const std::string& entity_col2) {
  E3D_ASSIGN_OR_RETURN(
      std::vector<int64_t> e1,
      EntitiesFromColumn(pipe.t1(), pipe.p1().table, entity_col1));
  E3D_ASSIGN_OR_RETURN(
      std::vector<int64_t> e2,
      EntitiesFromColumn(pipe.t2(), pipe.p2().table, entity_col2));
  return DeriveGoldFromEntities(pipe.t1(), pipe.t2(), e1, e2);
}

}  // namespace explain3d
