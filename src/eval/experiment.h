// Experiment harness: runs every algorithm of Section 5.1.3 on prepared
// stage-1 artifacts and reports Section-5.1.4 metrics plus timings.

#ifndef EXPLAIN3D_EVAL_EXPERIMENT_H_
#define EXPLAIN3D_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "eval/gold.h"
#include "eval/metrics.h"

namespace explain3d {

/// The evaluated algorithms (Section 5.1.3).
enum class Algorithm {
  kExplain3D,       ///< full system with smart partitioning
  kExplain3DNoOpt,  ///< basic algorithm, no partitioning optimization
  kGreedy,
  kThreshold09,
  kRSwoosh,
  kExactCover,
  kFormalExpTop15,
};

const char* AlgorithmName(Algorithm a);

/// All algorithms in the paper's figure order.
std::vector<Algorithm> AllAlgorithms();

/// Result of one algorithm run.
struct ExperimentResult {
  Algorithm algorithm = Algorithm::kExplain3D;
  AccuracyReport accuracy;
  double algorithm_seconds = 0;  ///< excludes shared stage-1 time
  double total_seconds = 0;      ///< algorithm + shared stage-1 time
  ExplanationSet explanations;
  bool optimal = true;
};

/// Runs `algorithm` against the stage-1 artifacts in `pipe` and scores it
/// against `gold`. `config` parameterizes explain3d variants (batch size,
/// α, β, ...).
Result<ExperimentResult> RunAlgorithm(Algorithm algorithm,
                                      const PipelineResult& pipe,
                                      const AttributeMatch& attr,
                                      const GoldStandard& gold,
                                      const Explain3DConfig& config);

/// Convenience: gold standard of a pipeline run whose provenance carries
/// entity-id columns (IMDb) — see eval/gold.h.
Result<GoldStandard> GoldFromEntityColumns(const PipelineResult& pipe,
                                           const std::string& entity_col1,
                                           const std::string& entity_col2);

}  // namespace explain3d

#endif  // EXPLAIN3D_EVAL_EXPERIMENT_H_
