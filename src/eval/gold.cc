#include "eval/gold.h"

#include <cmath>
#include <map>

namespace explain3d {

std::vector<int64_t> CanonicalEntities(
    const CanonicalRelation& rel,
    const std::vector<int64_t>& prov_row_entities) {
  std::vector<int64_t> out(rel.size(), -1);
  for (size_t c = 0; c < rel.size(); ++c) {
    int64_t entity = -1;
    bool consistent = true;
    for (size_t pr : rel.tuples[c].prov_rows) {
      if (pr >= prov_row_entities.size()) continue;
      int64_t e = prov_row_entities[pr];
      if (entity == -1) {
        entity = e;
      } else if (e != -1 && e != entity) {
        consistent = false;
        break;
      }
    }
    out[c] = consistent ? entity : -1;
  }
  return out;
}

GoldStandard DeriveGoldFromEntities(const CanonicalRelation& t1,
                                    const CanonicalRelation& t2,
                                    const std::vector<int64_t>& entities1,
                                    const std::vector<int64_t>& entities2) {
  GoldStandard gold;
  struct Group {
    std::vector<size_t> left, right;
  };
  std::map<int64_t, Group> groups;
  for (size_t i = 0; i < t1.size(); ++i) {
    if (entities1[i] >= 0) {
      groups[entities1[i]].left.push_back(i);
    } else {
      gold.explanations.delta.push_back({Side::kLeft, i});
    }
  }
  for (size_t j = 0; j < t2.size(); ++j) {
    if (entities2[j] >= 0) {
      groups[entities2[j]].right.push_back(j);
    } else {
      gold.explanations.delta.push_back({Side::kRight, j});
    }
  }

  for (const auto& [entity, g] : groups) {
    (void)entity;
    if (g.left.empty()) {
      for (size_t j : g.right) {
        gold.explanations.delta.push_back({Side::kRight, j});
      }
      continue;
    }
    if (g.right.empty()) {
      for (size_t i : g.left) {
        gold.explanations.delta.push_back({Side::kLeft, i});
      }
      continue;
    }
    double sum1 = 0, sum2 = 0;
    for (size_t i : g.left) {
      sum1 += t1.tuples[i].impact;
      for (size_t j : g.right) {
        gold.explanations.evidence.emplace_back(i, j, 1.0);
        gold.evidence_pairs.emplace(i, j);
      }
    }
    for (size_t j : g.right) sum2 += t2.tuples[j].impact;
    if (ImpactsDiffer(sum1, sum2)) {
      size_t j = g.right.front();
      gold.explanations.value_changes.push_back(
          {Side::kRight, j, t2.tuples[j].impact,
           t2.tuples[j].impact + (sum1 - sum2)});
    }
  }
  gold.explanations.Normalize();
  return gold;
}

std::vector<int64_t> EntitiesFromKeyMap(
    const CanonicalRelation& rel,
    const std::map<std::string, int64_t>& by_key) {
  std::vector<int64_t> out(rel.size(), -1);
  for (size_t c = 0; c < rel.size(); ++c) {
    auto it = by_key.find(rel.tuples[c].KeyString());
    if (it != by_key.end()) out[c] = it->second;
  }
  return out;
}

namespace {
GoldPairs PairsFromEntities(const std::vector<int64_t>& e1,
                            const std::vector<int64_t>& e2) {
  std::map<int64_t, std::vector<size_t>> left;
  for (size_t i = 0; i < e1.size(); ++i) {
    if (e1[i] >= 0) left[e1[i]].push_back(i);
  }
  GoldPairs pairs;
  for (size_t j = 0; j < e2.size(); ++j) {
    if (e2[j] < 0) continue;
    auto it = left.find(e2[j]);
    if (it == left.end()) continue;
    for (size_t i : it->second) pairs.emplace(i, j);
  }
  return pairs;
}
}  // namespace

CalibrationOracle MakeRowEntityOracle(std::vector<int64_t> rows1,
                                      std::vector<int64_t> rows2) {
  return [rows1 = std::move(rows1), rows2 = std::move(rows2)](
             const CanonicalRelation& t1, const CanonicalRelation& t2,
             const Table&, const Table&) {
    return PairsFromEntities(CanonicalEntities(t1, rows1),
                             CanonicalEntities(t2, rows2));
  };
}

CalibrationOracle MakeKeyMapOracle(std::map<std::string, int64_t> by_key1,
                                   std::map<std::string, int64_t> by_key2) {
  return [m1 = std::move(by_key1), m2 = std::move(by_key2)](
             const CanonicalRelation& t1, const CanonicalRelation& t2,
             const Table&, const Table&) {
    return PairsFromEntities(EntitiesFromKeyMap(t1, m1),
                             EntitiesFromKeyMap(t2, m2));
  };
}

CalibrationOracle MakeEntityColumnOracle(std::string column1,
                                         std::string column2) {
  return [c1 = std::move(column1), c2 = std::move(column2)](
             const CanonicalRelation& t1, const CanonicalRelation& t2,
             const Table& prov1, const Table& prov2) {
    Result<std::vector<int64_t>> e1 = EntitiesFromColumn(t1, prov1, c1);
    Result<std::vector<int64_t>> e2 = EntitiesFromColumn(t2, prov2, c2);
    if (!e1.ok() || !e2.ok()) return GoldPairs{};
    return PairsFromEntities(e1.value(), e2.value());
  };
}

Result<std::vector<int64_t>> EntitiesFromColumn(const CanonicalRelation& rel,
                                                const Table& prov,
                                                const std::string& column) {
  E3D_ASSIGN_OR_RETURN(size_t col, prov.schema().Resolve(column));
  std::vector<int64_t> out(rel.size(), -1);
  for (size_t c = 0; c < rel.size(); ++c) {
    int64_t entity = -1;
    bool consistent = true;
    for (size_t pr : rel.tuples[c].prov_rows) {
      const Value& v = prov.row(pr)[col];
      if (!v.is_numeric()) continue;
      int64_t e = static_cast<int64_t>(v.AsDouble());
      if (entity == -1) {
        entity = e;
      } else if (e != entity) {
        consistent = false;
        break;
      }
    }
    out[c] = consistent ? entity : -1;
  }
  return out;
}

}  // namespace explain3d
