// Accuracy metrics of Section 5.1.4: precision, recall, and F-measure for
// explanations and for evidence mappings.
//
// A predicted provenance-based explanation is correct when the gold
// standard removes the same canonical tuple. A predicted value-based
// explanation is correct when the gold standard fixes the same tuple *or
// a gold-matched partner of it* — within a matched pair the data cannot
// reveal which side holds the wrong value, so both attributions describe
// the same underlying error (documented in EXPERIMENTS.md).

#ifndef EXPLAIN3D_EVAL_METRICS_H_
#define EXPLAIN3D_EVAL_METRICS_H_

#include <string>

#include "eval/gold.h"

namespace explain3d {

/// Precision / recall / F-measure triple with the raw counts.
struct Prf {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  size_t predicted = 0;
  size_t gold = 0;
  size_t correct = 0;

  std::string ToString() const;
};

/// Combines counts into the harmonic-mean triple.
Prf MakePrf(size_t correct, size_t predicted, size_t gold);

/// Explanation accuracy over Δ ∪ δ.
Prf ExplanationAccuracy(const ExplanationSet& predicted,
                        const GoldStandard& gold);

/// Evidence accuracy over the refined tuple matches.
Prf EvidenceAccuracy(const TupleMapping& predicted_evidence,
                     const GoldStandard& gold);

/// Both, bundled for the report tables.
struct AccuracyReport {
  Prf explanation;
  Prf evidence;
};

AccuracyReport Evaluate(const ExplanationSet& predicted,
                        const GoldStandard& gold);

}  // namespace explain3d

#endif  // EXPLAIN3D_EVAL_METRICS_H_
