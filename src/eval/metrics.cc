#include "eval/metrics.h"

#include <map>
#include <set>

#include "common/string_util.h"

namespace explain3d {

std::string Prf::ToString() const {
  return StrFormat("P=%.3f R=%.3f F1=%.3f (pred=%zu gold=%zu ok=%zu)",
                   precision, recall, f1, predicted, gold, correct);
}

Prf MakePrf(size_t correct, size_t predicted, size_t gold) {
  Prf prf;
  prf.correct = correct;
  prf.predicted = predicted;
  prf.gold = gold;
  prf.precision = predicted == 0
                      ? (gold == 0 ? 1.0 : 0.0)
                      : static_cast<double>(correct) / predicted;
  prf.recall = gold == 0 ? 1.0 : static_cast<double>(correct) / gold;
  prf.f1 = (prf.precision + prf.recall) == 0
               ? 0.0
               : 2 * prf.precision * prf.recall /
                     (prf.precision + prf.recall);
  return prf;
}

Prf ExplanationAccuracy(const ExplanationSet& predicted,
                        const GoldStandard& gold) {
  using Key = std::pair<int, size_t>;
  auto key_of = [](Side s, size_t t) {
    return Key{s == Side::kLeft ? 0 : 1, t};
  };

  std::set<Key> gold_delta;
  for (const ProvExplanation& e : gold.explanations.delta) {
    gold_delta.insert(key_of(e.side, e.tuple));
  }
  // Gold value explanations are matchable at the flagged tuple or any of
  // its gold-evidence partners (side attribution is unidentifiable).
  std::map<Key, size_t> gold_value_alias;  // alias key -> gold index
  std::vector<bool> gold_value_used(gold.explanations.value_changes.size(),
                                    false);
  for (size_t g = 0; g < gold.explanations.value_changes.size(); ++g) {
    const ValueExplanation& e = gold.explanations.value_changes[g];
    gold_value_alias.emplace(key_of(e.side, e.tuple), g);
    for (const TupleMatch& m : gold.explanations.evidence) {
      if (e.side == Side::kRight && m.t2 == e.tuple) {
        gold_value_alias.emplace(key_of(Side::kLeft, m.t1), g);
      }
      if (e.side == Side::kLeft && m.t1 == e.tuple) {
        gold_value_alias.emplace(key_of(Side::kRight, m.t2), g);
      }
    }
  }

  size_t correct = 0;
  for (const ProvExplanation& e : predicted.delta) {
    if (gold_delta.count(key_of(e.side, e.tuple))) ++correct;
  }
  for (const ValueExplanation& e : predicted.value_changes) {
    auto it = gold_value_alias.find(key_of(e.side, e.tuple));
    if (it != gold_value_alias.end() && !gold_value_used[it->second]) {
      gold_value_used[it->second] = true;
      ++correct;
    }
  }
  size_t predicted_total =
      predicted.delta.size() + predicted.value_changes.size();
  size_t gold_total = gold.explanations.delta.size() +
                      gold.explanations.value_changes.size();
  return MakePrf(correct, predicted_total, gold_total);
}

Prf EvidenceAccuracy(const TupleMapping& predicted_evidence,
                     const GoldStandard& gold) {
  size_t correct = 0;
  std::set<std::pair<size_t, size_t>> seen;
  for (const TupleMatch& m : predicted_evidence) {
    if (!seen.insert({m.t1, m.t2}).second) continue;  // dedupe
    if (gold.evidence_pairs.count({m.t1, m.t2})) ++correct;
  }
  return MakePrf(correct, seen.size(), gold.evidence_pairs.size());
}

AccuracyReport Evaluate(const ExplanationSet& predicted,
                        const GoldStandard& gold) {
  AccuracyReport r;
  r.explanation = ExplanationAccuracy(predicted, gold);
  r.evidence = EvidenceAccuracy(predicted.evidence, gold);
  return r;
}

}  // namespace explain3d
