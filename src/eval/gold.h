// Gold standards for the evaluation (Section 5.1.1).
//
// Generators know the true lineage: every canonical tuple descends from a
// generated entity. Pairing equal entity ids across the two canonical
// relations yields the optimal evidence mapping; entities present on only
// one side yield gold provenance-based explanations; entity groups whose
// impacts disagree yield gold value-based explanations. This mirrors how
// the paper derives its gold standards ("the optimal evidence mapping can
// be easily acquired through the mapping between the views and the
// original dataset").

#ifndef EXPLAIN3D_EVAL_GOLD_H_
#define EXPLAIN3D_EVAL_GOLD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/explanation.h"
#include "core/pipeline.h"
#include "matching/mapping_generator.h"
#include "provenance/canonical.h"

namespace explain3d {

/// The true reconciliation of one query pair.
struct GoldStandard {
  ExplanationSet explanations;  ///< gold Δ, δ and evidence (p = 1)
  GoldPairs evidence_pairs;     ///< evidence as a set, for calibration
};

/// Entity id of each canonical tuple, derived from per-provenance-row
/// entity ids (a canonical tuple inherits the entity of its merged rows;
/// conflicting rows yield -1 = unknown).
std::vector<int64_t> CanonicalEntities(
    const CanonicalRelation& rel,
    const std::vector<int64_t>& prov_row_entities);

/// Builds the gold standard by joining the two sides on entity id.
/// Entities may group several side-1 tuples with one side-2 tuple
/// (containment matches); impact disagreement within a group produces a
/// gold value-based explanation on the side-2 member (metrics treat
/// either side of a gold pair as correct, see metrics.h).
GoldStandard DeriveGoldFromEntities(const CanonicalRelation& t1,
                                    const CanonicalRelation& t2,
                                    const std::vector<int64_t>& entities1,
                                    const std::vector<int64_t>& entities2);

/// Entity per canonical tuple looked up from its key string (generators
/// that key entities by name, e.g. the academic pair). Unknown keys → -1.
std::vector<int64_t> EntitiesFromKeyMap(
    const CanonicalRelation& rel,
    const std::map<std::string, int64_t>& by_key);

/// Entity per canonical tuple read from an id column of the provenance
/// relation (generators whose provenance carries entity ids, e.g. IMDb
/// movie/person ids). Conflicting ids within one canonical tuple → -1.
Result<std::vector<int64_t>> EntitiesFromColumn(const CanonicalRelation& rel,
                                                const Table& prov,
                                                const std::string& column);

// --- Calibration-oracle factories (PipelineInput::calibration_oracle) ---

/// Oracle pairing canonical tuples via per-provenance-row entity ids
/// (synthetic generator). Vectors are captured by value.
CalibrationOracle MakeRowEntityOracle(std::vector<int64_t> rows1,
                                      std::vector<int64_t> rows2);

/// Oracle pairing canonical tuples via key-string → entity maps
/// (academic generator).
CalibrationOracle MakeKeyMapOracle(std::map<std::string, int64_t> by_key1,
                                   std::map<std::string, int64_t> by_key2);

/// Oracle pairing canonical tuples via an entity-id column of each
/// provenance relation (IMDb generator).
CalibrationOracle MakeEntityColumnOracle(std::string column1,
                                         std::string column2);

}  // namespace explain3d

#endif  // EXPLAIN3D_EVAL_GOLD_H_
