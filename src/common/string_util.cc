#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace explain3d {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> TokenizeWords(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      cur += static_cast<char>(std::tolower(c));
    } else if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args2);
    return "";
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace explain3d
