// Minimal non-owning view over a contiguous array (C++17 stand-in for
// std::span). The columnar stage-1 layout (matching/token_interning.h)
// hands out Span<const uint32_t> views into its flat CSR arrays; the SIMD
// kernels (src/simd/) consume them directly.
//
// A Span never owns memory: the viewed array must outlive the view.

#ifndef EXPLAIN3D_COMMON_SPAN_H_
#define EXPLAIN3D_COMMON_SPAN_H_

#include <cstddef>
#include <vector>

namespace explain3d {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}
  /// Views a whole vector (non-const vectors convert to Span<const T>
  /// through the element pointer).
  template <typename U>
  Span(const std::vector<U>& v) : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_SPAN_H_
