// Deterministic pseudo-random number generation.
//
// All data generators and randomized tests seed an Rng explicitly so every
// experiment in EXPERIMENTS.md is exactly reproducible. The core generator
// is splitmix64 feeding xoshiro256**, which is fast and high-quality.

#ifndef EXPLAIN3D_COMMON_RNG_H_
#define EXPLAIN3D_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace explain3d {

/// Seeded, copyable random generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with exponent s (popularity skew used
  /// by the IMDb generator). Uses a precomputed CDF per (n, s) call site.
  size_t Zipf(size_t n, double s);

  /// Uniformly chooses an index in [0, n).
  size_t Index(size_t n) {
    E3D_CHECK_GT(n, 0u);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for per-table streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

// --- counter-based (stateless) draws ---------------------------------------
//
// A sequential Rng's k-th draw depends on the k-1 draws before it, which
// forces consumers that must stay deterministic to stay serial. These
// counter-based draws instead hash (seed, counter) directly — draw k is
// independent of every other draw, so parallel consumers can partition
// the counter space across threads and remain bit-identical at any
// thread count. The mix is the splitmix64 finalizer over a golden-ratio-
// spaced counter stream (the same construction that seeds Rng).

/// Uniform 64-bit hash of (seed, counter).
inline uint64_t CounterHash(uint64_t seed, uint64_t counter) {
  uint64_t z = seed + (counter + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) derived from CounterHash (same 53-bit
/// mantissa construction as Rng::UniformDouble).
inline double CounterUniform(uint64_t seed, uint64_t counter) {
  return static_cast<double>(CounterHash(seed, counter) >> 11) * 0x1.0p-53;
}

/// Bernoulli draw with probability p of true for (seed, counter).
inline bool CounterBernoulli(uint64_t seed, uint64_t counter, double p) {
  return CounterUniform(seed, counter) < p;
}

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_RNG_H_
