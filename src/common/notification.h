// One-shot notification: a latch a producer fires exactly once and any
// number of consumers wait on (abseil's Notification shape). The
// RequestTicket future in service/service.h builds its completion signal
// on this; it is generally the right primitive whenever "has this
// happened yet" needs a blocking wait, a poll, and a timed wait.

#ifndef EXPLAIN3D_COMMON_NOTIFICATION_H_
#define EXPLAIN3D_COMMON_NOTIFICATION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/logging.h"

namespace explain3d {

/// A one-shot event. Thread-safe; Notify() must be called at most once.
/// Waiters that arrive after the notification return immediately.
class Notification {
 public:
  Notification() = default;
  Notification(const Notification&) = delete;
  Notification& operator=(const Notification&) = delete;

  /// Fires the event, releasing every current and future waiter.
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      E3D_CHECK(!notified_);
      notified_ = true;
    }
    cv_.notify_all();
  }

  /// True once Notify() has run (non-blocking poll).
  bool HasBeenNotified() const {
    std::lock_guard<std::mutex> lock(mu_);
    return notified_;
  }

  /// Blocks until Notify() runs.
  void WaitForNotification() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return notified_; });
  }

  /// Blocks up to `seconds`; returns whether the event fired in time.
  bool WaitForNotificationWithTimeout(double seconds) const {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                        [this] { return notified_; });
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool notified_ = false;
};

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_NOTIFICATION_H_
