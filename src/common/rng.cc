#include "common/rng.h"

#include <cmath>

namespace explain3d {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  E3D_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit span
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

size_t Rng::Zipf(size_t n, double s) {
  E3D_CHECK_GT(n, 0u);
  // Inverse-CDF sampling on the harmonic weights 1/(k+1)^s. O(n) per call;
  // generator call sites draw from small n, so this stays cheap.
  double norm = 0.0;
  for (size_t k = 0; k < n; ++k) norm += 1.0 / std::pow(double(k + 1), s);
  double u = UniformDouble() * norm;
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(double(k + 1), s);
    if (u <= acc) return k;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  E3D_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xda3e39cb94b95bdbULL); }

}  // namespace explain3d
