// Wall-clock stopwatch used by the experiment harness.

#ifndef EXPLAIN3D_COMMON_TIMER_H_
#define EXPLAIN3D_COMMON_TIMER_H_

#include <chrono>

namespace explain3d {

/// Starts on construction; Seconds()/Millis() read elapsed wall time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_TIMER_H_
