#include "common/logging.h"

#include <atomic>

namespace explain3d {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  (void)level_;
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* expr) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] check failed: " << expr
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace explain3d
