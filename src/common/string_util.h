// String helpers shared across modules: tokenization for record-linkage
// similarity, case folding, join/split for CSV and display.

#ifndef EXPLAIN3D_COMMON_STRING_UTIL_H_
#define EXPLAIN3D_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace explain3d {

/// ASCII lower-casing (workloads are ASCII; no locale dependence).
std::string ToLower(const std::string& s);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Tokenizes for record-linkage similarity: lower-cases, then splits on any
/// non-alphanumeric run. "Equine Mgmt. (B.S.)" -> {"equine","mgmt","b","s"}.
std::vector<std::string> TokenizeWords(const std::string& s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_STRING_UTIL_H_
