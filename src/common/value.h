// Value: the dynamically-typed cell of the relational engine.
//
// Supports NULL, 64-bit integers, doubles, and strings — everything the
// explain3d workloads need (academic, IMDb, synthetic). Comparison follows
// SQL-ish semantics except that NULLs order first and compare equal to each
// other, which gives deterministic sorting/grouping.

#ifndef EXPLAIN3D_COMMON_VALUE_H_
#define EXPLAIN3D_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace explain3d {

/// Runtime type tag of a Value / declared type of a Column.
enum class DataType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

/// Human-readable type name ("INT", "DOUBLE", "STRING", "NULL").
const char* DataTypeName(DataType t);

/// A single dynamically-typed relational value.
class Value {
 public:
  /// NULL value.
  Value() : repr_(std::monostate{}) {}
  Value(int64_t v) : repr_(v) {}            // NOLINT: implicit by design
  Value(int v) : repr_(int64_t{v}) {}       // NOLINT
  Value(double v) : repr_(v) {}             // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  DataType type() const;
  bool is_null() const { return type() == DataType::kNull; }
  bool is_numeric() const {
    DataType t = type();
    return t == DataType::kInt64 || t == DataType::kDouble;
  }

  /// Typed accessors; E3D_CHECK-fail when the type does not match.
  int64_t AsInt64() const;
  double AsDouble() const;  ///< Accepts kInt64 (widening) or kDouble.
  const std::string& AsString() const;

  /// Numeric value as double, or `fallback` for non-numerics/NULL.
  double ToDoubleOr(double fallback) const;

  /// SQL-literal-style rendering: NULL, 42, 3.14, 'text'.
  std::string ToString() const;
  /// Raw rendering without string quotes (for CSV and display).
  std::string ToDisplayString() const;

  /// Total ordering: NULL < numbers (by numeric value) < strings (lexical).
  /// Cross-type numeric comparison (int vs double) compares numerically.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Stable hash consistent with operator== (ints and equal-valued doubles
  /// hash alike).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

/// Parses `text` as a value of declared type `type`. Empty text → NULL.
Result<Value> ParseValueAs(const std::string& text, DataType type);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_VALUE_H_
