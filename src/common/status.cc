#include "common/status.h"

namespace explain3d {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += msg_;
  return s;
}

}  // namespace explain3d
