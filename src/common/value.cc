#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/logging.h"

namespace explain3d {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

DataType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    case 3:
      return DataType::kString;
  }
  return DataType::kNull;
}

int64_t Value::AsInt64() const {
  E3D_CHECK(std::holds_alternative<int64_t>(repr_))
      << "Value is " << DataTypeName(type()) << ", not INT";
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(repr_)) {
    return static_cast<double>(std::get<int64_t>(repr_));
  }
  E3D_CHECK(std::holds_alternative<double>(repr_))
      << "Value is " << DataTypeName(type()) << ", not numeric";
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  E3D_CHECK(std::holds_alternative<std::string>(repr_))
      << "Value is " << DataTypeName(type()) << ", not STRING";
  return std::get<std::string>(repr_);
}

double Value::ToDoubleOr(double fallback) const {
  if (std::holds_alternative<int64_t>(repr_)) {
    return static_cast<double>(std::get<int64_t>(repr_));
  }
  if (std::holds_alternative<double>(repr_)) return std::get<double>(repr_);
  return fallback;
}

std::string Value::ToString() const {
  if (std::holds_alternative<std::string>(repr_)) {
    return "'" + std::get<std::string>(repr_) + "'";
  }
  return ToDisplayString();
}

std::string Value::ToDisplayString() const {
  switch (repr_.index()) {
    case 0:
      return "NULL";
    case 1:
      return std::to_string(std::get<int64_t>(repr_));
    case 2: {
      double d = std::get<double>(repr_);
      // Render integral doubles without a trailing ".000000".
      if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", d);
        return buf;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case 3:
      return std::get<std::string>(repr_);
  }
  return "NULL";
}

namespace {
// Rank used for cross-type ordering: NULL < numeric < string.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kInt64:
    case DataType::kDouble:
      return 1;
    case DataType::kString:
      return 2;
  }
  return 3;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL (deterministic grouping semantics).
    case 1: {
      // Compare int64 pairs exactly; anything involving a double compares
      // as double (adequate for the magnitudes this engine handles).
      if (std::holds_alternative<int64_t>(repr_) &&
          std::holds_alternative<int64_t>(other.repr_)) {
        int64_t a = std::get<int64_t>(repr_);
        int64_t b = std::get<int64_t>(other.repr_);
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = AsDouble();
      double b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      const std::string& a = AsString();
      const std::string& b = other.AsString();
      int c = a.compare(b);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  switch (repr_.index()) {
    case 0:
      return 0x9e3779b97f4a7c15ULL;
    case 1: {
      int64_t v = std::get<int64_t>(repr_);
      return std::hash<double>{}(static_cast<double>(v)) ^ 0x51ed270b;
    }
    case 2: {
      double d = std::get<double>(repr_);
      // Integral doubles must hash like the equal int64.
      return std::hash<double>{}(d) ^ 0x51ed270b;
    }
    default:
      return std::hash<std::string>{}(std::get<std::string>(repr_));
  }
}

Result<Value> ParseValueAs(const std::string& text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::ParseError("not an integer: '" + text + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::ParseError("not a number: '" + text + "'");
      }
      return Value(v);
    }
    case DataType::kString:
      return Value(text);
  }
  return Status::Internal("unknown DataType");
}

}  // namespace explain3d
