// Deterministic fault injection: named failure sites with a seeded,
// replayable firing schedule.
//
// Robustness code is only as trustworthy as the failure paths a test can
// actually reach. This framework plants named FAULT_POINT(site) probes at
// the spots where production systems actually break — stage-1 build
// steps, cache insert/evict, registry retirement, MILP node expansion,
// the service worker claim — and lets a test (or an operator, via the
// EXPLAIN3D_FAULT_SPEC environment variable) arm a schedule that makes
// some of those probes fire Status::Unavailable.
//
// Determinism: every firing decision is a pure function of
// (spec seed, site name, that site's hit index) through the counter-RNG
// in common/rng.h. Two runs with the same spec and the same per-site hit
// sequences fire at exactly the same hits, regardless of thread count or
// wall-clock. (Under concurrency the interleaving assigns hit indices in
// arrival order, so WHICH caller observes a firing may vary, but the
// multiset of decisions per site does not.)
//
// Spec grammar (clauses separated by ';' or ','; whitespace ignored):
//
//   spec   := clause (';' clause)*
//   clause := 'seed=' uint64            -- schedule seed (default 1)
//           | site '=' mode
//   site   := dotted name, e.g. stage1.block, cache.insert; a trailing
//             '*' prefix-matches (e.g. 'stage1.*' arms every stage-1 site)
//   mode   := 'p' float                 -- fire each hit with probability p
//           | 'n' uint64                -- fire every n-th hit (n, 2n, ...)
//           | 'once' uint64             -- fire exactly hit #k (0-based)
//
// Example: "seed=42; stage1.block=p0.01; cache.insert=n100; milp.node=once3"
//
// Compile-time gate: building with -DEXPLAIN3D_NO_FAULT_INJECTION (CMake
// option EXPLAIN3D_FAULT_INJECTION=OFF, for production binaries) compiles
// every probe down to a constant-OK expression with zero runtime cost;
// kFaultInjectionEnabled lets tests skip themselves in such builds. In
// instrumented builds an unarmed probe is a single relaxed atomic load.

#ifndef EXPLAIN3D_COMMON_FAULT_H_
#define EXPLAIN3D_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace explain3d {

#ifdef EXPLAIN3D_NO_FAULT_INJECTION
inline constexpr bool kFaultInjectionEnabled = false;
#else
inline constexpr bool kFaultInjectionEnabled = true;
#endif

/// Per-site schedule counters, snapshot by FaultInjector::SiteStats().
struct FaultSiteStats {
  std::string site;   ///< Armed site pattern as written in the spec.
  uint64_t hits = 0;  ///< Probes that consulted this rule.
  uint64_t fires = 0; ///< Probes that returned a fault.
};

/// \brief Process-wide registry of armed fault sites (see file comment).
///
/// Thread-safe. Exactly one instance exists (Instance()); it reads
/// EXPLAIN3D_FAULT_SPEC once on first use, and tests re-arm it with
/// Configure() / Disable(). Probes on hot paths stay cheap: when no spec
/// is armed, ShouldFire is one relaxed atomic load.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// \brief Replaces the armed schedule with `spec` (grammar above).
  /// An empty spec disarms. Resets all per-site counters. Returns
  /// InvalidArgument (leaving the previous schedule armed) on a
  /// malformed spec.
  Status Configure(const std::string& spec);

  /// Disarms all sites and resets counters.
  void Disable();

  /// True when any site is armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// \brief Consumes one hit at `site` and returns whether the schedule
  /// fires it. Unarmed/unmatched sites never fire (and are not counted).
  bool ShouldFire(const char* site);

  /// Total fires across all sites since the last Configure/Disable.
  /// Monotone between re-arms; the service health machine reads deltas.
  uint64_t TotalFires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

  /// Per-armed-rule counters, in spec order.
  std::vector<FaultSiteStats> SiteStats() const;

 private:
  FaultInjector();

  enum class Mode { kProbability, kEveryNth, kOnce };
  struct Rule {
    std::string pattern;  // site name, optionally ending in '*'
    Mode mode = Mode::kProbability;
    double p = 0;       // kProbability
    uint64_t n = 0;     // kEveryNth (fire hits n-1, 2n-1, ...) / kOnce (hit n)
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> fires{0};

    Rule() = default;
    // Movable so Parse can build rules in a vector; moving an ACTIVE rule
    // never happens (schedules are immutable once armed), so plain
    // counter copies suffice.
    Rule(Rule&& o) noexcept
        : pattern(std::move(o.pattern)),
          mode(o.mode),
          p(o.p),
          n(o.n),
          hits(o.hits.load(std::memory_order_relaxed)),
          fires(o.fires.load(std::memory_order_relaxed)) {}
    Rule& operator=(Rule&& o) noexcept {
      pattern = std::move(o.pattern);
      mode = o.mode;
      p = o.p;
      n = o.n;
      hits.store(o.hits.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      fires.store(o.fires.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
  };
  struct Schedule {
    uint64_t seed = 1;
    std::vector<Rule> rules;
  };

  static Status Parse(const std::string& spec, Schedule* out);

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> total_fires_{0};
  mutable std::mutex mu_;
  std::unique_ptr<Schedule> schedule_;  // guarded by mu_; null when disarmed
};

/// Probe body behind FAULT_POINT: Unavailable("injected fault at <site>")
/// when the armed schedule fires this hit, OK otherwise.
Status FaultCheck(const char* site);

/// Decision-only probe for sites that degrade behavior instead of
/// returning a Status (e.g. skipping a cache-eviction round).
bool FaultFired(const char* site);

#ifdef EXPLAIN3D_NO_FAULT_INJECTION
#define FAULT_POINT(site) ::explain3d::Status::OK()
#define FAULT_FIRED(site) false
#else
/// Status-valued probe; pair with E3D_RETURN_IF_ERROR at the call site.
#define FAULT_POINT(site) ::explain3d::FaultCheck(site)
/// Bool-valued probe for non-Status degradation sites.
#define FAULT_FIRED(site) ::explain3d::FaultFired(site)
#endif

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_FAULT_H_
