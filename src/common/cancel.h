// Cooperative cancellation: the primitive that makes long stage-2 solves
// interruptible.
//
// A CancelToken composes the three signals a serving layer needs to stop
// in-flight work:
//
//   * a manual cancel (RequestTicket::Cancel on a running request),
//   * a deadline clock (the request's end-to-end deadline, or the
//     routed Explain3DConfig::milp_time_limit_seconds stage-2 budget),
//   * an optional PARENT token, so a scope can tighten its parent's
//     budget without widening it (the solver links its time-limit token
//     under the service's per-request token),
//
// and exposes them as one cheap poll: Check() returns OK while live and
// a sticky kCancelled / kDeadlineExceeded Status once fired. Workers
// poll at their natural step boundaries — the pipeline between stages,
// the solver between sub-problems, and both branch & bound loops at
// node-expansion granularity — so a cancel or deadline resolves within
// milliseconds instead of after the full solve.
//
// Determinism contract: cancellation NEVER degrades a result. A call
// observing a fired token abandons its work and returns the token's
// Status; it does not return a time-truncated incumbent (the wall-clock-
// dependent solver path this design replaced). Every result that IS
// returned is therefore bit-identical to an uninterrupted run.
//
// The composed Notification gives waiters a blocking edge for the
// manual-cancel signal; deadline expiry is discovered lazily by polls
// (see fired_event()).

#ifndef EXPLAIN3D_COMMON_CANCEL_H_
#define EXPLAIN3D_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <limits>

#include "common/notification.h"
#include "common/status.h"

namespace explain3d {

/// \brief One-shot cooperative cancellation signal (see file comment).
///
/// Thread-safe: any number of threads may poll Check() while others call
/// Cancel(). Firing is sticky — once Check() returns non-OK it never
/// returns OK again, and an UNLINKED token's code never changes (its own
/// first firing wins the CAS forever). A parent-linked token reports the
/// parent's status first, so its observed CODE can shift to the parent's
/// if the parent fires later (still non-OK); classify an interruption
/// once, at the point that consumes it.
///
/// Not copyable or movable (it embeds a Notification); share it by
/// pointer/shared_ptr and construct deadline scopes in place
/// (std::optional<CancelToken>::emplace).
class CancelToken {
 public:
  /// A token with no deadline: fires only via Cancel() (or its parent).
  CancelToken() = default;

  /// \brief A token that fires `deadline_seconds` from NOW (<= 0 means
  /// no deadline), optionally nested under `parent`.
  ///
  /// A linked token reports the parent's status first, so a child scope
  /// can only tighten the parent's budget, never extend it. The parent
  /// must outlive this token; linking is poll-through (the child's own
  /// fired_event() does not fire when only the parent fires).
  explicit CancelToken(double deadline_seconds,
                       const CancelToken* parent = nullptr)
      : parent_(parent) {
    if (deadline_seconds > 0) {
      has_deadline_ = true;
      deadline_seconds_ = deadline_seconds;
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(deadline_seconds));
    }
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// \brief Requests cancellation. Idempotent; loses to an
  /// already-expired deadline (the first firing wins and is sticky).
  void Cancel() {
    int expected = kLive;
    if (fired_.compare_exchange_strong(expected, kCancelled,
                                       std::memory_order_acq_rel)) {
      fired_event_.Notify();
    }
  }

  /// \brief The poll every cancellation point calls.
  ///
  /// OK while live; Status::Cancelled after Cancel(); DeadlineExceeded
  /// once the deadline clock passes (discovered by this poll — the
  /// winning poll also fires fired_event()). A fired parent wins over
  /// this token's own state.
  Status Check() const {
    if (parent_ != nullptr) {
      Status parent_status = parent_->Check();
      if (!parent_status.ok()) return parent_status;
    }
    int f = fired_.load(std::memory_order_acquire);
    if (f == kLive && has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      int expected = kLive;
      if (fired_.compare_exchange_strong(expected, kDeadline,
                                         std::memory_order_acq_rel)) {
        fired_event_.Notify();
      }
      f = fired_.load(std::memory_order_acquire);
    }
    switch (f) {
      case kCancelled:
        return Status::Cancelled("request cancelled");
      case kDeadline:
        return Status::DeadlineExceeded(
            "deadline of " + std::to_string(deadline_seconds_) +
            "s passed");
      default:
        return Status::OK();
    }
  }

  /// \brief The composed one-shot event: fires on Cancel() and on the
  /// first poll that observes deadline expiry (lazy — an unpolled
  /// deadline token never notifies). Parent firings do not propagate.
  const Notification& fired_event() const { return fired_event_; }

  /// \brief Seconds until the earliest deadline along the parent chain,
  /// +infinity when no link has a deadline. Negative once a deadline has
  /// passed. Does NOT fire the token (pure clock read); a manual Cancel()
  /// is not reflected here — poll Check() for liveness.
  double RemainingSeconds() const {
    double remaining = std::numeric_limits<double>::infinity();
    if (parent_ != nullptr) remaining = parent_->RemainingSeconds();
    if (has_deadline_) {
      double own = std::chrono::duration<double>(
                       deadline_ - std::chrono::steady_clock::now())
                       .count();
      if (own < remaining) remaining = own;
    }
    return remaining;
  }

 private:
  static constexpr int kLive = 0;
  static constexpr int kCancelled = 1;
  static constexpr int kDeadline = 2;

  /// First firing wins (CAS); polls mutate lazily, hence mutable.
  mutable std::atomic<int> fired_{kLive};
  bool has_deadline_ = false;
  double deadline_seconds_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
  mutable Notification fired_event_;
};

/// Poll helper for optional tokens: OK when `token` is null or live.
inline Status CheckCancel(const CancelToken* token) {
  return token == nullptr ? Status::OK() : token->Check();
}

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_CANCEL_H_
