// Hash combinators for composite keys (row group-by keys, pair hashing).

#ifndef EXPLAIN3D_COMMON_HASH_H_
#define EXPLAIN3D_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace explain3d {

/// Mixes `v` into seed `h` (boost::hash_combine style, 64-bit constants).
inline size_t HashCombine(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

/// Hash for std::pair keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>{}(p.first), std::hash<B>{}(p.second));
  }
};

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_HASH_H_
