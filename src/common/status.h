// Status / Result<T> error-handling primitives.
//
// Following the RocksDB/Arrow idiom, fallible operations at public API
// boundaries return a Status (or a Result<T> carrying a value), never throw.
// Internal invariant violations use E3D_CHECK-style assertions (logging.h).

#ifndef EXPLAIN3D_COMMON_STATUS_H_
#define EXPLAIN3D_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace explain3d {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed or out-of-domain input.
  kNotFound,          ///< A named entity (table, column, file) does not exist.
  kAlreadyExists,     ///< Attempt to create an entity that already exists.
  kOutOfRange,        ///< Index or numeric value outside the valid range.
  kUnsupported,       ///< Feature outside the supported query/model fragment.
  kParseError,        ///< SQL or CSV text could not be parsed.
  kInfeasible,        ///< Optimization model has no feasible solution.
  kUnbounded,         ///< Optimization model has unbounded objective.
  kResourceExhausted, ///< Iteration/size limit hit before completion.
  kInternal,          ///< Bug: an internal invariant failed.
  kIOError,           ///< Filesystem failure.
  kCorruption,        ///< On-disk data failed a checksum or format check.
  kDeadlineExceeded,  ///< Request deadline passed before the work finished.
  kCancelled,         ///< Request cancelled by the caller.
  kUnavailable,       ///< Service cannot take the request (admission control).
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a free-form message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the OK case).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<Table> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value. Must only be called when ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  /// Value or a fallback when failed.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define E3D_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::explain3d::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result expression or propagates its Status.
#define E3D_ASSIGN_OR_RETURN(lhs, expr)          \
  auto E3D_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!E3D_CONCAT_(_res_, __LINE__).ok())        \
    return E3D_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(E3D_CONCAT_(_res_, __LINE__)).value()

#define E3D_CONCAT_INNER_(a, b) a##b
#define E3D_CONCAT_(a, b) E3D_CONCAT_INNER_(a, b)

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_STATUS_H_
