// Minimal leveled logging and checked assertions.
//
// E3D_CHECK aborts on internal invariant violations (programming errors);
// recoverable failures use Status (status.h).

#ifndef EXPLAIN3D_COMMON_LOGGING_H_
#define EXPLAIN3D_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace explain3d {

/// Log severity, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kWarn so
/// library users are not spammed. Benchmarks raise it to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborting variant used by E3D_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalLogMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define E3D_LOG(level)                                               \
  if (::explain3d::LogLevel::level >= ::explain3d::GetLogLevel())    \
  ::explain3d::internal::LogMessage(::explain3d::LogLevel::level,    \
                                    __FILE__, __LINE__)              \
      .stream()

/// Aborts with a message when `cond` is false. For internal invariants only.
#define E3D_CHECK(cond)                                                   \
  if (!(cond))                                                            \
  ::explain3d::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

#define E3D_CHECK_EQ(a, b) E3D_CHECK((a) == (b))
#define E3D_CHECK_NE(a, b) E3D_CHECK((a) != (b))
#define E3D_CHECK_LT(a, b) E3D_CHECK((a) < (b))
#define E3D_CHECK_LE(a, b) E3D_CHECK((a) <= (b))
#define E3D_CHECK_GT(a, b) E3D_CHECK((a) > (b))
#define E3D_CHECK_GE(a, b) E3D_CHECK((a) >= (b))

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_LOGGING_H_
