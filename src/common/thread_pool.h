// A small fixed-size thread pool (plain shared queue, no work stealing),
// plus the process-wide SharedPool every ParallelFor call site uses.
//
// Stage 1 (interning, blocking, candidate scoring) and stage 2 (the
// sub-problem solve loop) are all embarrassingly parallel per index;
// ParallelFor is the only pattern the codebase needs: run fn(i) for i in
// [0, n) on up to num_threads workers. Workers live in one shared pool —
// spawning a pool per call costs a thread-create/join round trip per
// ParallelFor, which matters once the pipeline serves many small
// interactive requests.

#ifndef EXPLAIN3D_COMMON_THREAD_POOL_H_
#define EXPLAIN3D_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace explain3d {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  size_t num_threads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
  }

  /// Grows the pool to at least `n` workers (never shrinks). Thread-safe
  /// against Submit/Wait and other EnsureWorkers calls; must not race the
  /// destructor.
  void EnsureWorkers(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < n) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished running. Note this is
  /// pool-global: with several concurrent submitters it waits for all of
  /// them (batch-scoped completion is what ParallelFor tracks itself).
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  }

  /// hardware_concurrency, never 0.
  static size_t DefaultThreads() {
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<size_t>(hc);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (stop_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop();
        ++running_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --running_;
        if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
      }
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t running_ = 0;
  bool stop_ = false;
};

/// The process-wide pool shared by solver and matcher. Created lazily with
/// hardware_concurrency workers and grown (never shrunk) to satisfy the
/// largest `min_threads` ever requested, so an explicit num_threads above
/// the core count (tests pin 4 on 1-core machines) still gets its workers.
/// Intentionally leaked: joining workers during static destruction would
/// race other static teardown, and the OS reclaims the threads anyway.
inline ThreadPool& SharedPool(size_t min_threads = 0) {
  static ThreadPool* pool = new ThreadPool(ThreadPool::DefaultThreads());
  if (min_threads > 0) pool->EnsureWorkers(min_threads);
  return *pool;
}

/// Resolves a configured thread count: explicit values pass through; 0
/// ("auto") honors the EXPLAIN3D_NUM_THREADS environment override (CI pins
/// it to exercise the parallel paths on default-configured runs) and falls
/// back to hardware_concurrency. Results are bit-identical for every
/// resolution, so the override can never change outputs.
inline size_t ResolveThreads(size_t configured) {
  if (configured != 0) return configured;
  static const size_t env_threads = [] {
    const char* s = std::getenv("EXPLAIN3D_NUM_THREADS");
    if (s == nullptr) return size_t{0};
    long v = std::atol(s);
    return v > 0 ? static_cast<size_t>(v) : size_t{0};
  }();
  return env_threads != 0 ? env_threads : ThreadPool::DefaultThreads();
}

/// Runs fn(i) for every i in [0, n). With num_threads <= 1 (or n <= 1) the
/// calls happen inline on the caller's thread — byte-for-byte the serial
/// behavior. Otherwise up to min(num_threads, n) claimers (the caller plus
/// helper tasks on the SharedPool) grab index chunks from an atomic
/// counter; fn must only touch per-index state (callers keep results in a
/// pre-sized vector slot per index so merge order stays deterministic).
///
/// Deadlock- and starvation-free by construction: the caller claims chunks
/// itself, and completion is tracked per index, so the batch finishes even
/// when the pool is saturated and no helper ever runs (e.g. a nested
/// ParallelFor issued from inside a pool task). Helper state lives on the
/// heap; a straggler task that drains after the batch completed sees no
/// work left and returns without touching the (dead) caller frame.
inline void ParallelFor(size_t num_threads, size_t n,
                        const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  size_t claimers = std::min(num_threads, n);

  struct Batch {
    std::atomic<size_t> next{0};
    size_t n = 0;
    size_t chunk = 1;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t completed = 0;
  };
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  // Chunked claiming amortizes the counter + completion bookkeeping over
  // cheap per-index bodies (candidate scoring runs millions of indices).
  batch->chunk = std::max<size_t>(1, n / (claimers * 8));
  batch->fn = &fn;

  auto run = [](Batch* b) {
    for (;;) {
      size_t begin = b->next.fetch_add(b->chunk, std::memory_order_relaxed);
      if (begin >= b->n) return;
      size_t end = std::min(begin + b->chunk, b->n);
      // fn is only dereferenced while some index in [begin, end) is
      // claimed-but-incomplete, which keeps the caller (and its fn) alive.
      for (size_t i = begin; i < end; ++i) (*b->fn)(i);
      bool last;
      {
        std::lock_guard<std::mutex> lock(b->mu);
        b->completed += end - begin;
        last = b->completed == b->n;
      }
      if (last) b->done_cv.notify_all();
    }
  };

  ThreadPool& pool = SharedPool(claimers);
  for (size_t w = 1; w < claimers; ++w) {
    pool.Submit([batch, run] { run(batch.get()); });
  }
  run(batch.get());  // the caller is claimer 0 — guaranteed progress
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&] { return batch->completed == batch->n; });
}

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_THREAD_POOL_H_
