// A small fixed-size thread pool (plain shared queue, no work stealing).
//
// Stage 2 solves its sub-problems independently; the pool lets the solver
// run them concurrently while the caller keeps results indexed so the
// merged output is bit-identical to a serial run. ParallelFor is the
// only pattern the codebase needs: run fn(i) for i in [0, n) on up to
// num_threads workers, claiming indices from an atomic counter.

#ifndef EXPLAIN3D_COMMON_THREAD_POOL_H_
#define EXPLAIN3D_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace explain3d {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished running.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  }

  /// hardware_concurrency, never 0.
  static size_t DefaultThreads() {
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<size_t>(hc);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (stop_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop();
        ++running_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --running_;
        if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t running_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for every i in [0, n). With num_threads <= 1 (or n <= 1) the
/// calls happen inline on the caller's thread — byte-for-byte the serial
/// behavior. Otherwise min(num_threads, n) workers claim indices from an
/// atomic counter; fn must only touch per-index state (callers keep
/// results in a pre-sized vector slot per index so merge order stays
/// deterministic).
inline void ParallelFor(size_t num_threads, size_t n,
                        const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  size_t workers = num_threads < n ? num_threads : n;
  std::atomic<size_t> next{0};
  ThreadPool pool(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace explain3d

#endif  // EXPLAIN3D_COMMON_THREAD_POOL_H_
