#include "common/fault.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace explain3d {
namespace {

// Strips all whitespace (the grammar ignores it everywhere).
std::string StripSpace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

std::vector<std::string> SplitClauses(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ';' || c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseProbability(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

// Per-site schedule stream: decorrelates sites armed under one seed so
// e.g. cache.insert and milp.node with the same p do not fire in
// lockstep. FNV-1a over the PATTERN string, mixed into the spec seed.
uint64_t SiteSeed(uint64_t seed, const std::string& pattern) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : pattern) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return seed ^ h;
}

bool PatternMatches(const std::string& pattern, const char* site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return std::string(site).compare(0, pattern.size() - 1, pattern, 0,
                                     pattern.size() - 1) == 0;
  }
  return pattern == site;
}

}  // namespace

FaultInjector::FaultInjector() {
  const char* env = std::getenv("EXPLAIN3D_FAULT_SPEC");
  if (env != nullptr && env[0] != '\0') {
    // A malformed env spec must not be silently ignored mid-run; fail
    // loudly at first use instead.
    Status s = Configure(env);
    E3D_CHECK(s.ok()) << "EXPLAIN3D_FAULT_SPEC: " << s.ToString();
  }
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

Status FaultInjector::Parse(const std::string& spec, Schedule* out) {
  for (const std::string& clause : SplitClauses(StripSpace(spec))) {
    size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      return Status::InvalidArgument("fault spec clause '" + clause +
                                     "' is not <site>=<mode> or seed=<n>");
    }
    std::string key = clause.substr(0, eq);
    std::string val = clause.substr(eq + 1);
    if (key == "seed") {
      if (!ParseU64(val, &out->seed)) {
        return Status::InvalidArgument("fault spec seed '" + val +
                                       "' is not a uint64");
      }
      continue;
    }
    Rule rule;
    rule.pattern = key;
    if (val.compare(0, 4, "once") == 0) {
      rule.mode = Mode::kOnce;
      if (!ParseU64(val.substr(4), &rule.n)) {
        return Status::InvalidArgument("fault spec mode '" + val +
                                       "' — expected once<hit-index>");
      }
    } else if (val[0] == 'p') {
      rule.mode = Mode::kProbability;
      if (!ParseProbability(val.substr(1), &rule.p)) {
        return Status::InvalidArgument("fault spec mode '" + val +
                                       "' — expected p<prob in [0,1]>");
      }
    } else if (val[0] == 'n') {
      rule.mode = Mode::kEveryNth;
      if (!ParseU64(val.substr(1), &rule.n) || rule.n == 0) {
        return Status::InvalidArgument("fault spec mode '" + val +
                                       "' — expected n<positive period>");
      }
    } else {
      return Status::InvalidArgument("fault spec mode '" + val +
                                     "' — expected p<f>, n<k>, or once<k>");
    }
    out->rules.push_back(std::move(rule));
  }
  return Status::OK();
}

Status FaultInjector::Configure(const std::string& spec) {
  auto schedule = std::make_unique<Schedule>();
  E3D_RETURN_IF_ERROR(Parse(spec, schedule.get()));
  bool arm = !schedule->rules.empty();
  {
    std::lock_guard<std::mutex> lock(mu_);
    schedule_ = arm ? std::move(schedule) : nullptr;
    total_fires_.store(0, std::memory_order_relaxed);
    armed_.store(arm, std::memory_order_relaxed);
  }
  return Status::OK();
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = nullptr;
  total_fires_.store(0, std::memory_order_relaxed);
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(const char* site) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (schedule_ == nullptr) return false;  // raced with Disable
  for (const Rule& rule : schedule_->rules) {
    if (!PatternMatches(rule.pattern, site)) continue;
    // First matching rule wins; its hit counter is the schedule counter.
    uint64_t hit = rule.hits.fetch_add(1, std::memory_order_relaxed);
    bool fire = false;
    switch (rule.mode) {
      case Mode::kProbability:
        fire = CounterBernoulli(SiteSeed(schedule_->seed, rule.pattern), hit,
                                rule.p);
        break;
      case Mode::kEveryNth:
        fire = (hit + 1) % rule.n == 0;
        break;
      case Mode::kOnce:
        fire = hit == rule.n;
        break;
    }
    if (fire) {
      rule.fires.fetch_add(1, std::memory_order_relaxed);
      total_fires_.fetch_add(1, std::memory_order_relaxed);
    }
    return fire;
  }
  return false;
}

std::vector<FaultSiteStats> FaultInjector::SiteStats() const {
  std::vector<FaultSiteStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  if (schedule_ == nullptr) return out;
  out.reserve(schedule_->rules.size());
  for (const Rule& rule : schedule_->rules) {
    FaultSiteStats s;
    s.site = rule.pattern;
    s.hits = rule.hits.load(std::memory_order_relaxed);
    s.fires = rule.fires.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

Status FaultCheck(const char* site) {
  if (FaultInjector::Instance().ShouldFire(site)) {
    return Status::Unavailable(std::string("injected fault at ") + site);
  }
  return Status::OK();
}

bool FaultFired(const char* site) {
  return FaultInjector::Instance().ShouldFire(site);
}

}  // namespace explain3d
