#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace explain3d {
namespace milp {

namespace {

// Wave width cap. A function of nothing but this constant and the open
// set's size, so the search trajectory is independent of the thread
// count (threads only split a wave's LP solves).
constexpr size_t kMaxWave = 8;

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound = kInfinity;  // LP bound of the parent (optimistic)
  size_t depth = 0;
  uint64_t seq = 0;  // monotone creation counter (total-order tie-break)
};

struct NodeOrder {
  // Best-bound first; deeper nodes win ties (dives to incumbents
  // faster); creation order (earlier first) makes the order TOTAL, so
  // the pop sequence cannot depend on priority-queue internals or on
  // how warm-start pruning reshaped the insertion history.
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    if (a->bound != b->bound) return a->bound < b->bound;
    if (a->depth != b->depth) return a->depth < b->depth;
    return a->seq > b->seq;
  }
};

}  // namespace

MilpSolver::MilpSolver(const Model& model, MilpOptions opts)
    : model_(model), opts_(opts) {}

Solution MilpSolver::Solve() { return Run(nullptr); }

Solution MilpSolver::SolveWithWarmStart(
    const std::vector<double>& warm_start) {
  return Run(&warm_start);
}

Solution MilpSolver::Run(const std::vector<double>* warm_start) {
  Timer timer;
  stats_ = MilpStats();
  Solution best;
  best.status = SolveStatus::kLimit;
  best.objective = -kInfinity;

  if (warm_start != nullptr && model_.IsFeasible(*warm_start)) {
    best.status = SolveStatus::kFeasible;
    best.values = *warm_start;
    best.objective = model_.ObjectiveValue(*warm_start);
  }

  SimplexSolver lp(model_, opts_.lp);
  size_t n = model_.num_variables();

  // Effective pruning level: the incumbent, raised to the caller's
  // admissible floor. Pruning only — acceptance below stays a strict
  // comparison against best.objective, and the returned best_bound is
  // computed from best.objective / open-node bounds, never the floor.
  auto prune_level = [&]() {
    return std::max(best.objective, opts_.incumbent_floor);
  };

  uint64_t next_seq = 0;
  auto root = std::make_shared<Node>();
  root->lower.resize(n);
  root->upper.resize(n);
  for (size_t j = 0; j < n; ++j) {
    root->lower[j] = model_.variable(j).lower;
    root->upper[j] = model_.variable(j).upper;
  }
  root->bound = kInfinity;
  root->seq = next_seq++;

  std::priority_queue<std::shared_ptr<Node>,
                      std::vector<std::shared_ptr<Node>>, NodeOrder>
      open;
  open.push(root);

  bool any_limit_hit = false;
  bool root_node = true;
  std::vector<std::shared_ptr<Node>> wave;
  std::vector<LpResult> relaxes(kMaxWave);
  wave.reserve(kMaxWave);

  while (!open.empty()) {
    // Cancellation beats the limits: limits return a (deterministic, for
    // max_nodes) incumbent, a fired token abandons the search outright.
    // The milp.node fault probe (common/fault.h) shares the abandon path:
    // an injected fault interrupts the search exactly like a fired token,
    // and the solver maps a kInterrupted with a LIVE token to
    // kUnavailable — the transient, retryable failure shape.
    if ((opts_.cancel != nullptr && !opts_.cancel->Check().ok()) ||
        FAULT_FIRED("milp.node")) {
      // No usable incumbent leaves the interrupted solve, but the search
      // state still proves an optimistic bound: nothing in the tree can
      // beat the best open node (or the incumbent found so far). Recorded
      // BEFORE the incumbent is wiped, so degradation reporting can show
      // "best possible ≤ X" even for an abandoned solve. The warm-start
      // floor is NOT consulted here: it prunes only subtrees that cannot
      // contain the optimum, so the open-node bound stays admissible.
      stats_.best_bound = open.empty()
                              ? best.objective
                              : std::max(best.objective, open.top()->bound);
      best.status = SolveStatus::kInterrupted;
      best.values.clear();
      best.objective = -kInfinity;
      stats_.seconds = timer.Seconds();
      return best;
    }
    if (stats_.nodes >= opts_.max_nodes ||
        timer.Seconds() > opts_.time_limit_seconds) {
      any_limit_hit = true;
      break;
    }

    // Assemble the wave: pop up to kMaxWave un-prunable nodes in the
    // queue's (total) order, capped by the remaining node budget.
    wave.clear();
    size_t cap = std::min(kMaxWave, opts_.max_nodes - stats_.nodes);
    while (!open.empty() && wave.size() < cap) {
      std::shared_ptr<Node> node = open.top();
      open.pop();
      if (node->bound <= prune_level() + opts_.absolute_gap) {
        continue;  // cannot beat the incumbent (or the floor)
      }
      wave.push_back(std::move(node));
    }
    if (wave.empty()) continue;  // everything popped was prunable
    stats_.nodes += wave.size();

    // The wave's LP relaxations, fanned out on the shared pool. The
    // simplex solver is stateless per call, so the slots share one
    // instance; per-slot results land in private slots.
    ParallelFor(opts_.num_threads, wave.size(),
                [&](size_t i) {
                  relaxes[i] = lp.Solve(&wave[i]->lower, &wave[i]->upper);
                });

    // Sequential merge in slot order — the serial solver's incumbent
    // logic verbatim, so the incumbent evolution (and therefore the
    // tie-broken solution) does not depend on the thread count.
    for (size_t i = 0; i < wave.size(); ++i) {
      const std::shared_ptr<Node>& node = wave[i];
      const LpResult& relax = relaxes[i];
      stats_.lp_iterations += relax.iterations;

      if (relax.status == SolveStatus::kInfeasible) {
        root_node = false;
        continue;
      }
      if (relax.status == SolveStatus::kUnbounded) {
        if (root_node) {
          best.status = SolveStatus::kUnbounded;
          stats_.seconds = timer.Seconds();
          return best;
        }
        // A bounded parent cannot spawn an unbounded child on a
        // restricted box unless numerics failed; treat as a limit hit.
        any_limit_hit = true;
        root_node = false;
        continue;
      }
      if (relax.status == SolveStatus::kLimit) {
        any_limit_hit = true;
        root_node = false;
        continue;
      }

      // Subsumes the re-check against incumbents accepted by earlier
      // slots of this wave: relax.objective <= node->bound.
      if (relax.objective <= prune_level() + opts_.absolute_gap) {
        root_node = false;
        continue;
      }

      // Find the most fractional integer variable.
      size_t branch_var = n;
      double best_frac = opts_.int_tol;
      for (size_t j = 0; j < n; ++j) {
        if (!model_.variable(j).is_integer) continue;
        double v = relax.values[j];
        double frac = std::abs(v - std::round(v));
        if (frac > best_frac) {
          best_frac = frac;
          branch_var = j;
        }
      }

      if (branch_var == n) {
        // Integral (continuous vars free): candidate incumbent.
        std::vector<double> candidate = relax.values;
        for (size_t j = 0; j < n; ++j) {
          if (model_.variable(j).is_integer) {
            candidate[j] = std::round(candidate[j]);
          }
        }
        if (relax.objective > best.objective &&
            model_.IsFeasible(candidate, 1e-5)) {
          best.values = candidate;
          best.objective = model_.ObjectiveValue(candidate);
          best.status = SolveStatus::kFeasible;
        }
        root_node = false;
        continue;
      }

      if (root_node) {
        // Rounding heuristic for an initial incumbent.
        std::vector<double> rounded = relax.values;
        for (size_t j = 0; j < n; ++j) {
          if (model_.variable(j).is_integer) {
            rounded[j] = std::clamp(std::round(rounded[j]),
                                    node->lower[j], node->upper[j]);
          }
        }
        if (model_.IsFeasible(rounded, 1e-6)) {
          double obj = model_.ObjectiveValue(rounded);
          if (obj > best.objective) {
            best.values = rounded;
            best.objective = obj;
            best.status = SolveStatus::kFeasible;
          }
        }
        root_node = false;
      }

      double v = relax.values[branch_var];
      auto down = std::make_shared<Node>();
      down->lower = node->lower;
      down->upper = node->upper;
      down->upper[branch_var] = std::floor(v);
      down->bound = relax.objective;
      down->depth = node->depth + 1;
      down->seq = next_seq++;
      if (down->lower[branch_var] <= down->upper[branch_var]) {
        open.push(std::move(down));
      }

      auto up = std::make_shared<Node>();
      up->lower = node->lower;
      up->upper = node->upper;
      up->lower[branch_var] = std::ceil(v);
      up->bound = relax.objective;
      up->depth = node->depth + 1;
      up->seq = next_seq++;
      if (up->lower[branch_var] <= up->upper[branch_var]) {
        open.push(std::move(up));
      }
    }
  }

  stats_.best_bound =
      open.empty() ? best.objective : std::max(best.objective,
                                               open.top()->bound);
  stats_.seconds = timer.Seconds();

  if (best.has_solution()) {
    best.status = (any_limit_hit || !open.empty()) ? SolveStatus::kFeasible
                                                   : SolveStatus::kOptimal;
  } else {
    best.status =
        any_limit_hit || !open.empty() ? SolveStatus::kLimit
                                       : SolveStatus::kInfeasible;
  }
  return best;
}

}  // namespace milp
}  // namespace explain3d
