// Branch & bound MILP solver on top of the bounded-variable simplex.
//
// Best-bound search with most-fractional branching, a root rounding
// heuristic, optional warm starts, node/time limits, and cooperative
// cancellation polled at wave granularity. Small models solve to proven
// optimality; limit hits return the best incumbent with kFeasible
// status; a fired cancel token returns kInterrupted with no usable
// incumbent (see SolveStatus::kInterrupted).
//
// The search proceeds in deterministic WAVES: each iteration pops up to
// kMaxWave un-prunable nodes in best-bound order (total order — ties
// broken by depth, then by a monotone creation sequence number), solves
// their LP relaxations — in parallel on the shared pool when
// MilpOptions::num_threads > 1 — and merges the results sequentially in
// slot order with exactly the serial incumbent logic. The wave width is
// a function of the search state only, never of the thread count, so
// solutions, stats, and bounds are bit-identical at any thread count.

#ifndef EXPLAIN3D_MILP_BRANCH_AND_BOUND_H_
#define EXPLAIN3D_MILP_BRANCH_AND_BOUND_H_

#include <vector>

#include "common/cancel.h"
#include "milp/model.h"
#include "milp/simplex.h"

namespace explain3d {
namespace milp {

/// MILP solve options.
struct MilpOptions {
  LpOptions lp;
  size_t max_nodes = 500000;       ///< branch-and-bound node limit
  double time_limit_seconds = 120;  ///< wall-clock limit
  double int_tol = 1e-6;           ///< integrality tolerance
  /// Prune nodes whose LP bound improves the incumbent by less than this.
  double absolute_gap = 1e-9;
  /// Known lower bound on the optimum (a warm-start incumbent objective,
  /// already margin-adjusted by the caller). Used for PRUNING ONLY: it
  /// never becomes a returned solution, never loosens the strict `>`
  /// acceptance test, and never leaks into MilpStats::best_bound — so an
  /// admissible floor (strictly below the true optimum) cannot change
  /// which solution is found, only how fast. Default −inf = no floor.
  double incumbent_floor = -kInfinity;
  /// Threads for the wave LP solves (see the header comment). Results
  /// are bit-identical for every value; 1 = fully serial.
  size_t num_threads = 1;
  /// Optional cooperative cancellation, polled before every wave of node
  /// expansions. When it fires the solve returns kInterrupted
  /// immediately — unlike the node/time limits it yields NO incumbent,
  /// so interruption can never silently degrade a result (must outlive
  /// the solve; nullptr = never cancelled).
  const CancelToken* cancel = nullptr;
};

/// Statistics of one MILP solve.
struct MilpStats {
  size_t nodes = 0;
  size_t lp_iterations = 0;
  double best_bound = kInfinity;
  double seconds = 0;
};

/// Branch & bound solver.
class MilpSolver {
 public:
  explicit MilpSolver(const Model& model, MilpOptions opts = MilpOptions());

  /// Solves from scratch.
  Solution Solve();

  /// Solves with an initial incumbent (checked for feasibility; ignored
  /// when infeasible).
  Solution SolveWithWarmStart(const std::vector<double>& warm_start);

  const MilpStats& stats() const { return stats_; }

 private:
  Solution Run(const std::vector<double>* warm_start);

  const Model& model_;
  MilpOptions opts_;
  MilpStats stats_;
};

}  // namespace milp
}  // namespace explain3d

#endif  // EXPLAIN3D_MILP_BRANCH_AND_BOUND_H_
