// Exhaustive reference solver for small MILP models.
//
// Enumerates every integer assignment in the (finite, bounded) integer
// domain product; continuous variables are optimized by the simplex with
// the integers fixed. Exponential by construction — it exists to
// cross-check MilpSolver in property tests, never for production solves.

#ifndef EXPLAIN3D_MILP_BRUTE_FORCE_H_
#define EXPLAIN3D_MILP_BRUTE_FORCE_H_

#include "common/status.h"
#include "milp/model.h"

namespace explain3d {
namespace milp {

/// Solves `model` by enumeration. Fails with ResourceExhausted when the
/// integer domain product exceeds `enumeration_limit`, and with
/// InvalidArgument when an integer variable has an unbounded domain.
Result<Solution> BruteForceSolve(const Model& model,
                                 size_t enumeration_limit = 2000000);

}  // namespace milp
}  // namespace explain3d

#endif  // EXPLAIN3D_MILP_BRUTE_FORCE_H_
