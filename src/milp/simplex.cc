#include "milp/simplex.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace explain3d {
namespace milp {

namespace {

enum class VarStatus { kBasic, kAtLower, kAtUpper, kFreeZero };

/// Mutable state of one simplex run over the shared matrix.
struct Tableau {
  // Variable layout: [0, n) structural, [n, n+m) slacks,
  // [n+m, n+m+n_art) artificials.
  size_t n = 0;      // structural count
  size_t m = 0;      // rows
  size_t total = 0;  // all columns incl. slacks + artificials

  std::vector<double> lower, upper;     // per variable
  std::vector<double> value;            // current value per variable
  std::vector<VarStatus> status;        // per variable
  std::vector<size_t> basis;            // row -> basic variable
  std::vector<size_t> basic_row;        // variable -> row (or SIZE_MAX)
  std::vector<double> binv;             // dense m*m, row-major
  std::vector<std::vector<std::pair<size_t, double>>> art_cols;
  std::vector<size_t> art_vars;         // artificial variable ids

  double& Binv(size_t i, size_t j) { return binv[i * m + j]; }
  double BinvAt(size_t i, size_t j) const { return binv[i * m + j]; }
};

constexpr size_t kNoRow = static_cast<size_t>(-1);

}  // namespace

SimplexSolver::SimplexSolver(const Model& model, LpOptions opts)
    : model_(model), opts_(opts) {
  size_t n = model.num_variables();
  size_t m = model.num_constraints();
  columns_.resize(n);
  rhs_.resize(m);
  slack_lower_.resize(m);
  slack_upper_.resize(m);
  for (size_t r = 0; r < m; ++r) {
    const Constraint& c = model.constraint(r);
    rhs_[r] = c.rhs;
    for (const auto& [var, coeff] : c.terms) {
      columns_[var].emplace_back(r, coeff);
    }
    switch (c.relation) {
      case Relation::kLe:
        slack_lower_[r] = 0.0;
        slack_upper_[r] = kInfinity;
        break;
      case Relation::kGe:
        slack_lower_[r] = -kInfinity;
        slack_upper_[r] = 0.0;
        break;
      case Relation::kEq:
        slack_lower_[r] = 0.0;
        slack_upper_[r] = 0.0;
        break;
    }
  }
}

namespace {

/// Column access helper: structural columns come from the solver, slack
/// column i is the single entry (i, 1), artificial columns live in the
/// tableau.
class ColumnView {
 public:
  ColumnView(const std::vector<std::vector<std::pair<size_t, double>>>* cols,
             const Tableau* t)
      : cols_(cols), t_(t) {}

  /// Applies fn(row, coeff) over column `var`.
  template <typename Fn>
  void ForEach(size_t var, Fn&& fn) const {
    if (var < t_->n) {
      for (const auto& [r, a] : (*cols_)[var]) fn(r, a);
    } else if (var < t_->n + t_->m) {
      fn(var - t_->n, 1.0);
    } else {
      for (const auto& [r, a] : t_->art_cols[var - t_->n - t_->m]) fn(r, a);
    }
  }

 private:
  const std::vector<std::vector<std::pair<size_t, double>>>* cols_;
  const Tableau* t_;
};

/// One phase of the bounded-variable simplex, minimizing cost'value.
/// Returns kOptimal, kUnbounded, or kLimit.
SolveStatus RunSimplex(Tableau* t, const std::vector<double>& cost,
                       const ColumnView& view, const LpOptions& opts,
                       size_t* iterations_out) {
  size_t m = t->m;
  double tol = opts.tol;
  std::vector<double> y(m), w(m);
  size_t degenerate_streak = 0;
  size_t iters = 0;

  for (; iters < opts.max_iterations; ++iters) {
    // Duals: y = (B^-1)^T c_B.
    for (size_t i = 0; i < m; ++i) y[i] = 0.0;
    for (size_t k = 0; k < m; ++k) {
      double cb = cost[t->basis[k]];
      if (cb == 0.0) continue;
      for (size_t i = 0; i < m; ++i) y[i] += cb * t->BinvAt(k, i);
    }

    // Pricing: find entering variable.
    bool use_bland = degenerate_streak >= opts.bland_trigger;
    size_t enter = t->total;
    int enter_dir = 0;
    double best_score = tol;
    for (size_t j = 0; j < t->total; ++j) {
      VarStatus st = t->status[j];
      if (st == VarStatus::kBasic) continue;
      // Skip fixed variables.
      if (t->lower[j] == t->upper[j]) continue;
      double d = cost[j];
      view.ForEach(j, [&](size_t r, double a) { d -= y[r] * a; });
      int dir = 0;
      double score = 0;
      if (st == VarStatus::kAtLower && d < -tol) {
        dir = +1;
        score = -d;
      } else if (st == VarStatus::kAtUpper && d > tol) {
        dir = -1;
        score = d;
      } else if (st == VarStatus::kFreeZero && std::abs(d) > tol) {
        dir = d < 0 ? +1 : -1;
        score = std::abs(d);
      }
      if (dir == 0) continue;
      if (use_bland) {
        enter = j;
        enter_dir = dir;
        break;
      }
      if (score > best_score) {
        best_score = score;
        enter = j;
        enter_dir = dir;
      }
    }
    if (enter == t->total) {
      *iterations_out += iters;
      return SolveStatus::kOptimal;
    }

    // Direction: w = B^-1 * A_enter.
    for (size_t i = 0; i < m; ++i) w[i] = 0.0;
    view.ForEach(enter, [&](size_t r, double a) {
      for (size_t i = 0; i < m; ++i) w[i] += t->BinvAt(i, r) * a;
    });

    // Ratio test. Entering moves t_step >= 0 in direction enter_dir;
    // basic k changes at rate delta_k = -enter_dir * w[k].
    double t_step = kInfinity;
    // Entering variable's own range.
    double own_range = t->upper[enter] - t->lower[enter];
    bool flip_limits = false;
    if (std::isfinite(own_range)) {
      t_step = own_range;
      flip_limits = true;
    }
    size_t leave_row = kNoRow;
    int leave_to_upper = 0;
    for (size_t k = 0; k < m; ++k) {
      double delta = -static_cast<double>(enter_dir) * w[k];
      if (std::abs(delta) <= tol) continue;
      size_t bvar = t->basis[k];
      double ratio;
      int to_upper;
      if (delta < 0) {
        if (!std::isfinite(t->lower[bvar])) continue;
        ratio = (t->value[bvar] - t->lower[bvar]) / (-delta);
        to_upper = 0;
      } else {
        if (!std::isfinite(t->upper[bvar])) continue;
        ratio = (t->upper[bvar] - t->value[bvar]) / delta;
        to_upper = 1;
      }
      if (ratio < -tol) ratio = 0;  // numerical guard
      if (ratio < t_step - tol ||
          (ratio < t_step + tol && leave_row != kNoRow &&
           t->basis[k] < t->basis[leave_row])) {
        t_step = std::max(ratio, 0.0);
        leave_row = k;
        leave_to_upper = to_upper;
        flip_limits = false;
      }
    }

    if (!std::isfinite(t_step)) {
      *iterations_out += iters;
      return SolveStatus::kUnbounded;
    }
    if (t_step <= tol) {
      ++degenerate_streak;
    } else {
      degenerate_streak = 0;
    }

    // Apply the step.
    double signed_step = static_cast<double>(enter_dir) * t_step;
    for (size_t k = 0; k < m; ++k) {
      t->value[t->basis[k]] -= signed_step * w[k];
    }
    t->value[enter] += signed_step;

    if (flip_limits || leave_row == kNoRow) {
      // Bound flip: entering variable crosses to its other bound.
      t->status[enter] = enter_dir > 0 ? VarStatus::kAtUpper
                                       : VarStatus::kAtLower;
      t->value[enter] =
          enter_dir > 0 ? t->upper[enter] : t->lower[enter];
      continue;
    }

    // Pivot: basis[leave_row] exits to a bound, enter becomes basic.
    size_t leave_var = t->basis[leave_row];
    t->status[leave_var] =
        leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    t->value[leave_var] =
        leave_to_upper ? t->upper[leave_var] : t->lower[leave_var];
    t->basic_row[leave_var] = kNoRow;

    t->status[enter] = VarStatus::kBasic;
    t->basis[leave_row] = enter;
    t->basic_row[enter] = leave_row;

    // Gauss-Jordan update of B^-1.
    double pivot = w[leave_row];
    E3D_CHECK(std::abs(pivot) > 1e-12) << "singular pivot in simplex";
    double* prow = &t->binv[leave_row * m];
    for (size_t j = 0; j < m; ++j) prow[j] /= pivot;
    for (size_t i = 0; i < m; ++i) {
      if (i == leave_row) continue;
      double f = w[i];
      if (std::abs(f) <= 1e-14) continue;
      double* irow = &t->binv[i * m];
      for (size_t j = 0; j < m; ++j) irow[j] -= f * prow[j];
    }
  }
  *iterations_out += iters;
  return SolveStatus::kLimit;
}

}  // namespace

LpResult SimplexSolver::Solve(
    const std::vector<double>* lower_override,
    const std::vector<double>* upper_override) const {
  size_t n = model_.num_variables();
  size_t m = model_.num_constraints();
  LpResult result;

  Tableau t;
  t.n = n;
  t.m = m;
  t.total = n + m;  // artificials appended below
  t.lower.resize(n + m);
  t.upper.resize(n + m);
  for (size_t j = 0; j < n; ++j) {
    t.lower[j] =
        lower_override ? (*lower_override)[j] : model_.variable(j).lower;
    t.upper[j] =
        upper_override ? (*upper_override)[j] : model_.variable(j).upper;
    if (t.lower[j] > t.upper[j] + opts_.tol) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }
  for (size_t r = 0; r < m; ++r) {
    t.lower[n + r] = slack_lower_[r];
    t.upper[n + r] = slack_upper_[r];
  }

  t.value.assign(n + m, 0.0);
  t.status.assign(n + m, VarStatus::kAtLower);
  t.basic_row.assign(n + m, kNoRow);

  // Nonbasic structurals start at the finite bound nearest zero.
  for (size_t j = 0; j < n; ++j) {
    double lo = t.lower[j], hi = t.upper[j];
    if (std::isfinite(lo) && std::isfinite(hi)) {
      if (std::abs(lo) <= std::abs(hi)) {
        t.status[j] = VarStatus::kAtLower;
        t.value[j] = lo;
      } else {
        t.status[j] = VarStatus::kAtUpper;
        t.value[j] = hi;
      }
    } else if (std::isfinite(lo)) {
      t.status[j] = VarStatus::kAtLower;
      t.value[j] = lo;
    } else if (std::isfinite(hi)) {
      t.status[j] = VarStatus::kAtUpper;
      t.value[j] = hi;
    } else {
      t.status[j] = VarStatus::kFreeZero;
      t.value[j] = 0.0;
    }
  }

  // Initial basis: the slacks; basic values from the row residuals.
  t.basis.resize(m);
  t.binv.assign(m * m, 0.0);
  std::vector<double> residual(rhs_);
  for (size_t j = 0; j < n; ++j) {
    if (t.value[j] == 0.0) continue;
    for (const auto& [r, a] : columns_[j]) residual[r] -= a * t.value[j];
  }
  // Rows whose slack cannot absorb the residual get an artificial.
  for (size_t r = 0; r < m; ++r) {
    double v = residual[r];
    size_t slack = n + r;
    if (v >= t.lower[slack] - opts_.tol && v <= t.upper[slack] + opts_.tol) {
      t.basis[r] = slack;
      t.basic_row[slack] = r;
      t.status[slack] = VarStatus::kBasic;
      t.value[slack] = v;
      t.Binv(r, r) = 1.0;
      continue;
    }
    // Slack parks at the bound nearest the residual; the artificial
    // carries the (nonnegative) violation.
    double parked = std::isfinite(t.upper[slack]) && v > t.upper[slack]
                        ? t.upper[slack]
                        : t.lower[slack];
    t.status[slack] = parked == t.upper[slack] && std::isfinite(parked) &&
                              t.upper[slack] != t.lower[slack]
                          ? VarStatus::kAtUpper
                          : VarStatus::kAtLower;
    if (!std::isfinite(parked)) parked = 0.0;
    t.value[slack] = parked;
    double art_value = v - parked;
    double coeff = art_value >= 0 ? 1.0 : -1.0;
    size_t art_id = t.total + t.art_cols.size() - t.art_cols.size();
    (void)art_id;
    t.art_cols.push_back({{r, coeff}});
    size_t var = n + m + t.art_cols.size() - 1;
    t.art_vars.push_back(var);
    t.lower.push_back(0.0);
    t.upper.push_back(kInfinity);
    t.value.push_back(std::abs(art_value));
    t.status.push_back(VarStatus::kBasic);
    t.basic_row.push_back(r);
    t.basis[r] = var;
    // Binv row: artificial column is coeff * e_r, so B^-1 row r is
    // (1/coeff) e_r.
    t.Binv(r, r) = 1.0 / coeff;
  }
  t.total = n + m + t.art_cols.size();

  ColumnView view(&columns_, &t);

  // Phase 1: minimize the sum of artificials.
  if (!t.art_cols.empty()) {
    std::vector<double> cost(t.total, 0.0);
    for (size_t var : t.art_vars) cost[var] = 1.0;
    SolveStatus st = RunSimplex(&t, cost, view, opts_, &result.iterations);
    if (st == SolveStatus::kLimit) {
      result.status = SolveStatus::kLimit;
      return result;
    }
    double infeas = 0;
    for (size_t var : t.art_vars) infeas += t.value[var];
    if (infeas > 1e-6) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    // Pin artificials at zero for phase 2.
    for (size_t var : t.art_vars) {
      t.upper[var] = 0.0;
      t.value[var] = std::max(0.0, std::min(t.value[var], 0.0));
    }
  }

  // Phase 2: minimize the negated model objective.
  {
    std::vector<double> cost(t.total, 0.0);
    for (size_t j = 0; j < n; ++j) cost[j] = -model_.variable(j).objective;
    SolveStatus st = RunSimplex(&t, cost, view, opts_, &result.iterations);
    if (st == SolveStatus::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (st == SolveStatus::kLimit) {
      result.status = SolveStatus::kLimit;
      return result;
    }
  }

  result.status = SolveStatus::kOptimal;
  result.values.assign(t.value.begin(), t.value.begin() + n);
  // Clamp tiny numerical drift back into the bounds.
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = std::clamp(result.values[j], t.lower[j], t.upper[j]);
  }
  result.objective = model_.ObjectiveValue(result.values);
  return result;
}

}  // namespace milp
}  // namespace explain3d
