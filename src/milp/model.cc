#include "milp/model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace explain3d {
namespace milp {

double LinExpr::Evaluate(const std::vector<double>& x) const {
  double v = constant_;
  for (const auto& [var, coeff] : terms_) v += coeff * x[var];
  return v;
}

VarId Model::AddContinuous(const std::string& name, double lower,
                           double upper, double objective) {
  Variable v;
  v.name = name;
  v.lower = lower;
  v.upper = upper;
  v.is_integer = false;
  v.objective = objective;
  variables_.push_back(std::move(v));
  return variables_.size() - 1;
}

VarId Model::AddInteger(const std::string& name, double lower, double upper,
                        double objective) {
  VarId id = AddContinuous(name, lower, upper, objective);
  variables_[id].is_integer = true;
  return id;
}

VarId Model::AddBinary(const std::string& name, double objective) {
  return AddInteger(name, 0.0, 1.0, objective);
}

void Model::AddConstraint(const LinExpr& expr, Relation relation, double rhs,
                          const std::string& name) {
  Constraint c;
  c.name = name;
  c.relation = relation;
  c.rhs = rhs - expr.constant();
  c.terms.assign(expr.terms().begin(), expr.terms().end());
  constraints_.push_back(std::move(c));
}

size_t Model::num_integer_variables() const {
  size_t n = 0;
  for (const Variable& v : variables_) {
    if (v.is_integer) ++n;
  }
  return n;
}

double Model::ObjectiveValue(const std::vector<double>& x) const {
  double obj = objective_constant_;
  for (size_t i = 0; i < variables_.size(); ++i) {
    obj += variables_[i].objective * x[i];
  }
  return obj;
}

bool Model::IsFeasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (size_t i = 0; i < variables_.size(); ++i) {
    const Variable& v = variables_[i];
    if (x[i] < v.lower - tol || x[i] > v.upper + tol) return false;
    if (v.is_integer && std::abs(x[i] - std::round(x[i])) > tol) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0;
    for (const auto& [var, coeff] : c.terms) lhs += coeff * x[var];
    switch (c.relation) {
      case Relation::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case Relation::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case Relation::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string Model::ToString() const {
  std::string s = "maximize ";
  bool first = true;
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].objective == 0) continue;
    if (!first) s += " + ";
    s += StrFormat("%g*%s", variables_[i].objective,
                   variables_[i].name.c_str());
    first = false;
  }
  s += StrFormat(" + %g\nsubject to\n", objective_constant_);
  for (const Constraint& c : constraints_) {
    s += "  ";
    for (size_t k = 0; k < c.terms.size(); ++k) {
      if (k > 0) s += " + ";
      s += StrFormat("%g*%s", c.terms[k].second,
                     variables_[c.terms[k].first].name.c_str());
    }
    switch (c.relation) {
      case Relation::kLe:
        s += " <= ";
        break;
      case Relation::kGe:
        s += " >= ";
        break;
      case Relation::kEq:
        s += " = ";
        break;
    }
    s += StrFormat("%g\n", c.rhs);
  }
  s += "bounds\n";
  for (const Variable& v : variables_) {
    s += StrFormat("  %g <= %s <= %g%s\n", v.lower, v.name.c_str(), v.upper,
                   v.is_integer ? " (int)" : "");
  }
  return s;
}

const char* SolveStatusName(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kFeasible:
      return "feasible";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kLimit:
      return "limit";
    case SolveStatus::kInterrupted:
      return "interrupted";
  }
  return "?";
}

}  // namespace milp
}  // namespace explain3d
