// Mixed-integer linear program model (the input language of the solver).
//
// A model holds variables (bounded, optionally integer), linear
// constraints, and a linear objective. The LinExpr helper lets encoders
// write `expr += 3.0 * x` style code without manual index bookkeeping.
//
// This module replaces the role IBM CPLEX plays in the paper (see
// DESIGN.md, substitutions table).

#ifndef EXPLAIN3D_MILP_MODEL_H_
#define EXPLAIN3D_MILP_MODEL_H_

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace explain3d {
namespace milp {

/// Variable handle (index into the model's variable array).
using VarId = size_t;

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Constraint relation.
enum class Relation { kLe, kGe, kEq };

/// A variable: bounds, integrality, objective coefficient.
struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  bool is_integer = false;
  double objective = 0.0;
};

/// Sparse linear expression: Σ coeff_i · var_i + constant.
class LinExpr {
 public:
  LinExpr() = default;
  explicit LinExpr(double constant) : constant_(constant) {}

  LinExpr& Add(VarId var, double coeff) {
    if (coeff != 0.0) terms_[var] += coeff;
    return *this;
  }
  LinExpr& AddConstant(double c) {
    constant_ += c;
    return *this;
  }
  LinExpr& AddExpr(const LinExpr& other, double scale = 1.0) {
    for (const auto& [v, c] : other.terms_) Add(v, scale * c);
    constant_ += scale * other.constant_;
    return *this;
  }

  const std::map<VarId, double>& terms() const { return terms_; }
  double constant() const { return constant_; }

  /// Evaluates at an assignment (indexable by VarId).
  double Evaluate(const std::vector<double>& x) const;

 private:
  std::map<VarId, double> terms_;
  double constant_ = 0.0;
};

/// One constraint: expr relation rhs (the expression's constant is folded
/// into the rhs on addition).
struct Constraint {
  std::string name;
  std::vector<std::pair<VarId, double>> terms;  // sorted by VarId
  Relation relation = Relation::kLe;
  double rhs = 0.0;
};

/// The model. Objective sense is always MAXIMIZE (EXP-3D maximizes a
/// log-probability); minimizers can negate coefficients.
class Model {
 public:
  /// Adds a continuous variable; returns its handle.
  VarId AddContinuous(const std::string& name, double lower, double upper,
                      double objective = 0.0);
  /// Adds an integer variable.
  VarId AddInteger(const std::string& name, double lower, double upper,
                   double objective = 0.0);
  /// Adds a binary (0/1 integer) variable.
  VarId AddBinary(const std::string& name, double objective = 0.0);

  /// Adds constraint `expr relation rhs`.
  void AddConstraint(const LinExpr& expr, Relation relation, double rhs,
                     const std::string& name = "");

  /// Adds to a variable's objective coefficient.
  void AddObjective(VarId var, double coeff) {
    variables_[var].objective += coeff;
  }
  /// Adds a constant to the objective (carried through to reported values).
  void AddObjectiveConstant(double c) { objective_constant_ += c; }

  size_t num_variables() const { return variables_.size(); }
  size_t num_constraints() const { return constraints_.size(); }
  size_t num_integer_variables() const;

  const Variable& variable(VarId v) const { return variables_[v]; }
  Variable& mutable_variable(VarId v) { return variables_[v]; }
  const std::vector<Variable>& variables() const { return variables_; }
  const Constraint& constraint(size_t i) const { return constraints_[i]; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  double objective_constant() const { return objective_constant_; }

  /// Objective value of an assignment (includes the constant).
  double ObjectiveValue(const std::vector<double>& x) const;

  /// Checks an assignment against every constraint, bound, and
  /// integrality requirement within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// LP-format-like text dump for debugging.
  std::string ToString() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  double objective_constant_ = 0.0;
};

/// Outcome of a solve.
enum class SolveStatus {
  kOptimal,        ///< proven optimal (within tolerances)
  kFeasible,       ///< feasible incumbent, limit hit before proof
  kInfeasible,     ///< no feasible solution exists
  kUnbounded,      ///< objective unbounded above
  kLimit,          ///< limit hit with no incumbent
  /// The MilpOptions::cancel token fired mid-search. The solution state
  /// is abandoned, not degraded: callers must propagate the token's
  /// status instead of consuming any incumbent (which would depend on
  /// wall-clock timing and break determinism).
  kInterrupted,
};

const char* SolveStatusName(SolveStatus s);

/// Solution: status, assignment, objective.
struct Solution {
  SolveStatus status = SolveStatus::kLimit;
  std::vector<double> values;  ///< indexed by VarId; empty if none found
  double objective = -kInfinity;

  bool has_solution() const {
    return status == SolveStatus::kOptimal ||
           status == SolveStatus::kFeasible;
  }
};

}  // namespace milp
}  // namespace explain3d

#endif  // EXPLAIN3D_MILP_MODEL_H_
