#include "milp/brute_force.h"

#include <cmath>
#include <vector>

#include "milp/simplex.h"

namespace explain3d {
namespace milp {

Result<Solution> BruteForceSolve(const Model& model,
                                 size_t enumeration_limit) {
  size_t n = model.num_variables();
  std::vector<size_t> int_vars;
  std::vector<int64_t> lo, hi;
  double combos = 1;
  bool has_continuous = false;
  for (size_t j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    if (!v.is_integer) {
      has_continuous = true;
      continue;
    }
    if (!std::isfinite(v.lower) || !std::isfinite(v.upper)) {
      return Status::InvalidArgument(
          "brute force requires bounded integer domains: " + v.name);
    }
    int_vars.push_back(j);
    lo.push_back(static_cast<int64_t>(std::ceil(v.lower - 1e-9)));
    hi.push_back(static_cast<int64_t>(std::floor(v.upper + 1e-9)));
    if (hi.back() < lo.back()) {
      Solution s;
      s.status = SolveStatus::kInfeasible;
      return s;
    }
    combos *= static_cast<double>(hi.back() - lo.back() + 1);
    if (combos > static_cast<double>(enumeration_limit)) {
      return Status::ResourceExhausted(
          "integer domain product exceeds enumeration limit");
    }
  }

  Solution best;
  best.status = SolveStatus::kInfeasible;
  best.objective = -kInfinity;

  std::vector<int64_t> assign(int_vars.size());
  for (size_t k = 0; k < int_vars.size(); ++k) assign[k] = lo[k];

  SimplexSolver lp(model, LpOptions());

  bool done = int_vars.empty() && false;  // at least one pass always runs
  (void)done;
  for (;;) {
    if (has_continuous) {
      // Fix integer variables via bound overrides; optimize the rest.
      std::vector<double> lower(n), upper(n);
      for (size_t j = 0; j < n; ++j) {
        lower[j] = model.variable(j).lower;
        upper[j] = model.variable(j).upper;
      }
      for (size_t k = 0; k < int_vars.size(); ++k) {
        lower[int_vars[k]] = static_cast<double>(assign[k]);
        upper[int_vars[k]] = static_cast<double>(assign[k]);
      }
      LpResult r = lp.Solve(&lower, &upper);
      if (r.status == SolveStatus::kUnbounded) {
        Solution s;
        s.status = SolveStatus::kUnbounded;
        return s;
      }
      if (r.status == SolveStatus::kOptimal &&
          r.objective > best.objective) {
        best.objective = r.objective;
        best.values = r.values;
        best.status = SolveStatus::kOptimal;
      }
    } else {
      std::vector<double> x(n, 0.0);
      for (size_t k = 0; k < int_vars.size(); ++k) {
        x[int_vars[k]] = static_cast<double>(assign[k]);
      }
      if (model.IsFeasible(x)) {
        double obj = model.ObjectiveValue(x);
        if (obj > best.objective) {
          best.objective = obj;
          best.values = x;
          best.status = SolveStatus::kOptimal;
        }
      }
    }
    // Advance the odometer.
    size_t k = 0;
    for (; k < int_vars.size(); ++k) {
      if (assign[k] < hi[k]) {
        ++assign[k];
        for (size_t r = 0; r < k; ++r) assign[r] = lo[r];
        break;
      }
    }
    if (k == int_vars.size()) break;
  }
  return best;
}

}  // namespace milp
}  // namespace explain3d
