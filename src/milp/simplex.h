// Bounded-variable two-phase primal simplex (the LP engine under branch
// & bound).
//
// Internal computational form: every constraint row r gets a slack s_r,
//     Σ_j a_rj x_j + s_r = b_r
// with slack bounds encoding the relation (≤ → s∈[0,∞), ≥ → s∈(−∞,0],
// = → s∈[0,0]). Phase 1 adds artificials for rows whose initial slack
// value violates its bounds and minimizes their sum; phase 2 optimizes
// the real objective. The basis inverse is kept dense and updated by
// Gauss–Jordan pivots; Dantzig pricing with a Bland's-rule fallback
// guards against cycling. Suited to the component-sized models the
// explain3d encoder emits (tens to a few thousand rows).

#ifndef EXPLAIN3D_MILP_SIMPLEX_H_
#define EXPLAIN3D_MILP_SIMPLEX_H_

#include <vector>

#include "milp/model.h"

namespace explain3d {
namespace milp {

/// LP solve options.
struct LpOptions {
  double tol = 1e-7;             ///< feasibility / pricing tolerance
  size_t max_iterations = 200000;  ///< per phase
  /// Consecutive degenerate pivots before switching to Bland's rule.
  size_t bland_trigger = 50;
};

/// LP relaxation result. `values` covers the model's structural variables.
struct LpResult {
  SolveStatus status = SolveStatus::kLimit;
  std::vector<double> values;
  double objective = -kInfinity;  ///< model objective (maximize)
  size_t iterations = 0;
};

/// Reusable LP solver over one model; bound overrides make repeated
/// branch-and-bound solves cheap (the constraint matrix is shared).
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model, LpOptions opts = LpOptions());

  /// Solves the LP relaxation (integrality dropped). When overrides are
  /// given they replace the model's variable bounds (size = #variables).
  LpResult Solve(const std::vector<double>* lower_override = nullptr,
                 const std::vector<double>* upper_override = nullptr) const;

 private:
  const Model& model_;
  LpOptions opts_;
  // Sparse columns of the structural variables: (row, coeff) pairs.
  std::vector<std::vector<std::pair<size_t, double>>> columns_;
  std::vector<double> rhs_;
  std::vector<double> slack_lower_;
  std::vector<double> slack_upper_;
};

}  // namespace milp
}  // namespace explain3d

#endif  // EXPLAIN3D_MILP_SIMPLEX_H_
