#include "simd/intersect.h"

#include <algorithm>

#if defined(__x86_64__) && !defined(EXPLAIN3D_NO_SIMD)
#include <immintrin.h>
#define EXPLAIN3D_SIMD_X86 1
#endif

namespace explain3d {
namespace simd {

namespace {

// Branch-light scalar merge: every step advances at least one cursor, the
// comparisons compile to flag-setting adds. This is the oracle the vector
// tiers must match count-for-count.
size_t MergeCountScalar(const uint32_t* a, size_t na, const uint32_t* b,
                        size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    uint32_t x = a[i];
    uint32_t y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

// Galloping intersection for skewed sizes: each element of the small side
// exponential-searches forward in the large side. Used at EVERY tier when
// the ratio passes kGallopRatio — the win is skipping runs of the large
// array, which lane width does not help with — so the skewed path is
// trivially tier-identical.
size_t GallopCount(const uint32_t* a, size_t na, const uint32_t* b,
                   size_t nb) {
  size_t j = 0, count = 0;
  for (size_t i = 0; i < na && j < nb; ++i) {
    uint32_t x = a[i];
    // Exponential bound: after the loop, x can only occur in
    // b[j, min(nb, j+bound+1)).
    size_t bound = 1;
    while (j + bound < nb && b[j + bound] < x) bound <<= 1;
    const uint32_t* lo = b + j;
    const uint32_t* hi = b + std::min(nb, j + bound + 1);
    const uint32_t* pos = std::lower_bound(lo, hi, x);
    j = static_cast<size_t>(pos - b);
    if (j < nb && b[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

#if defined(EXPLAIN3D_SIMD_X86)

// Block-compare merge: broadcast each element of the (smaller) a against
// an 8-lane block of b; the block advances only when a[i] has passed its
// maximum, so every equal pair meets exactly once. Inputs are unique, so
// "any lane equal" contributes exactly one to the count.
__attribute__((target("avx2"))) size_t MergeCountAvx2(const uint32_t* a,
                                                      size_t na,
                                                      const uint32_t* b,
                                                      size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j + 8 <= nb) {
    __m256i va = _mm256_set1_epi32(static_cast<int>(a[i]));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    count += _mm256_testz_si256(eq, eq) == 0;
    if (a[i] <= b[j + 7]) {
      ++i;
    } else {
      j += 8;
    }
  }
  return count + MergeCountScalar(a + i, na - i, b + j, nb - j);
}

// Same shape, 16 lanes, compare-to-mask.
__attribute__((target("avx512f"))) size_t MergeCountAvx512(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j + 16 <= nb) {
    __m512i va = _mm512_set1_epi32(static_cast<int>(a[i]));
    __m512i vb = _mm512_loadu_si512(b + j);
    __mmask16 eq = _mm512_cmpeq_epi32_mask(va, vb);
    count += eq != 0;
    if (a[i] <= b[j + 15]) {
      ++i;
    } else {
      j += 16;
    }
  }
  return count + MergeCountScalar(a + i, na - i, b + j, nb - j);
}

#endif  // EXPLAIN3D_SIMD_X86

}  // namespace

size_t IntersectCountTier(IsaTier tier, Span<const uint32_t> a,
                          Span<const uint32_t> b) {
  // Put the smaller set on the a side: both the block merge and the
  // gallop want to iterate the small one.
  const uint32_t* sa = a.data();
  size_t na = a.size();
  const uint32_t* sb = b.data();
  size_t nb = b.size();
  if (na > nb) {
    std::swap(sa, sb);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (nb > na * kGallopRatio) return GallopCount(sa, na, sb, nb);
#if defined(EXPLAIN3D_SIMD_X86)
  switch (tier) {
    case IsaTier::kAvx2:
      return MergeCountAvx2(sa, na, sb, nb);
    case IsaTier::kAvx512:
      return MergeCountAvx512(sa, na, sb, nb);
    case IsaTier::kScalar:
      break;
  }
#else
  (void)tier;
#endif
  return MergeCountScalar(sa, na, sb, nb);
}

}  // namespace simd
}  // namespace explain3d
