// Sorted-set intersection kernels over interned token ids.
//
// Counts |a ∩ b| for two ascending, duplicate-free uint32 arrays — the
// inner loop of token Jaccard (similarity.cc) and the only arithmetic in
// blocking's candidate overlap. The count is an exact integer at every
// tier, so a Jaccard computed from it is bit-identical to the scalar
// merge the repo has always used.
//
// Kernel shapes:
//   * balanced sizes — linear merge; the vector tiers compare each
//     element of the smaller array against an 8-wide (AVX2) / 16-wide
//     (AVX-512) block of the larger and advance the block monotonically:
//     O(|a| + |b|/W) comparisons instead of O(|a| + |b|).
//   * skewed sizes (ratio > kGallopRatio) — galloping: each element of
//     the small side exponential-searches forward in the large side,
//     O(|a| log |b|). Same count, and the same path at every tier (the
//     win is the search, not the width).

#ifndef EXPLAIN3D_SIMD_INTERSECT_H_
#define EXPLAIN3D_SIMD_INTERSECT_H_

#include <cstddef>
#include <cstdint>

#include "common/span.h"
#include "simd/dispatch.h"

#if defined(__x86_64__) && !defined(EXPLAIN3D_NO_SIMD)
#include <immintrin.h>
#define EXPLAIN3D_SIMD_INTERSECT_X86 1
#endif

namespace explain3d {
namespace simd {

/// Small/large size ratio beyond which the merge switches to galloping.
constexpr size_t kGallopRatio = 32;

/// Below this size on BOTH sides, IntersectCount stays on an inlined
/// scalar merge: sets this small never fill a vector block, so the
/// dispatch hop would cost more than the merge itself. (Typical key
/// cells hold a handful of tokens — this IS the common case.)
constexpr size_t kSmallSetCutoff = 16;

/// At or below this size on both sides, IntersectCount counts pairwise
/// equalities instead of merging. The merge is latency-bound — every
/// iteration's loads depend on the previous cursor advance, and the
/// data-dependent exit branch mispredicts on random inputs — while the
/// O(na·nb) compares are independent and branch-free, several times
/// faster up to ~8×8.
constexpr size_t kAllPairsCutoff = 8;

/// Same, forcing a specific tier — the fuzz suite compares every
/// supported tier against kScalar. `tier` must satisfy TierSupported.
/// No small-set shortcut: the requested tier's kernel always runs.
size_t IntersectCountTier(IsaTier tier, Span<const uint32_t> a,
                          Span<const uint32_t> b);

/// |a ∩ b| via the ActiveTier() kernel (inlined scalar merge below
/// kSmallSetCutoff — identical count either way). Inputs must be
/// ascending and duplicate-free (TokenIdSet invariant); empty spans are
/// fine.
namespace internal {

#if defined(EXPLAIN3D_SIMD_INTERSECT_X86)
/// Lane masks for the ≤8-lane maskload: row n enables the first n lanes.
alignas(32) inline constexpr int32_t kLaneMask[9][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},
    {-1, 0, 0, 0, 0, 0, 0, 0},
    {-1, -1, 0, 0, 0, 0, 0, 0},
    {-1, -1, -1, 0, 0, 0, 0, 0},
    {-1, -1, -1, -1, 0, 0, 0, 0},
    {-1, -1, -1, -1, -1, 0, 0, 0},
    {-1, -1, -1, -1, -1, -1, 0, 0},
    {-1, -1, -1, -1, -1, -1, -1, 0},
    {-1, -1, -1, -1, -1, -1, -1, -1},
};

/// All-pairs count for na, nb ≤ 8: b sits in one 8-lane register, each
/// a element broadcast-compares against it, and matches OR into a lane
/// accumulator — each b lane matches at most one a (unique sets), so the
/// popcount of hit lanes IS the intersection size. ~12 cycles with no
/// serial cursor chain and no data-dependent branches.
__attribute__((target("avx2"))) inline size_t AllPairsCountAvx2(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  __m256i mask =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kLaneMask[nb]));
  __m256i vb = _mm256_maskload_epi32(reinterpret_cast<const int*>(b), mask);
  // Masked-off lanes read as 0, and 0 is a real token id — flip them to
  // 0xFFFFFFFF, the dictionary's kMissing sentinel, which no set holds.
  vb = _mm256_or_si256(vb, _mm256_andnot_si256(mask, _mm256_set1_epi32(-1)));
  __m256i acc = _mm256_setzero_si256();
  for (size_t i = 0; i < na; ++i) {
    __m256i va = _mm256_set1_epi32(static_cast<int>(a[i]));
    acc = _mm256_or_si256(acc, _mm256_cmpeq_epi32(va, vb));
  }
  int hit = _mm256_movemask_ps(_mm256_castsi256_ps(acc));
  return static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(hit)));
}
#endif  // EXPLAIN3D_SIMD_INTERSECT_X86

}  // namespace internal

inline size_t IntersectCount(Span<const uint32_t> a, Span<const uint32_t> b) {
  if (a.size() <= kAllPairsCutoff && b.size() <= kAllPairsCutoff) {
#if defined(EXPLAIN3D_SIMD_INTERSECT_X86)
    // Latched at first use: the vector path is pure ISA availability (the
    // count is identical either way), so later test-only tier overrides
    // need not flip it. AVX-512 hardware takes this path too — 8 lanes
    // already cover the cutoff.
    static const bool use_avx2 = TierSupported(IsaTier::kAvx2) &&
                                 ActiveTier() != IsaTier::kScalar;
    if (use_avx2) {
      return internal::AllPairsCountAvx2(a.data(), a.size(), b.data(),
                                         b.size());
    }
#endif
    // Sorted unique sets: each element matches at most once, so the
    // pairwise-equality count IS |a ∩ b| — same integer as the merge.
    // The per-row accumulator keeps the add chains of different rows
    // independent (one shared counter would serialize every compare).
    size_t count = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      uint32_t x = a[i];
      size_t row = 0;
      for (size_t j = 0; j < b.size(); ++j) row += (x == b[j]);
      count += row;
    }
    return count;
  }
  if (a.size() < kSmallSetCutoff && b.size() < kSmallSetCutoff) {
    const uint32_t* pa = a.begin();
    const uint32_t* pb = b.begin();
    const uint32_t* ea = a.end();
    const uint32_t* eb = b.end();
    size_t count = 0;
    while (pa != ea && pb != eb) {
      uint32_t x = *pa;
      uint32_t y = *pb;
      count += (x == y);
      pa += (x <= y);
      pb += (y <= x);
    }
    return count;
  }
  return IntersectCountTier(ActiveTier(), a, b);
}

}  // namespace simd
}  // namespace explain3d

#endif  // EXPLAIN3D_SIMD_INTERSECT_H_
