#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace explain3d {
namespace simd {

namespace {

// Vector kernels exist only on x86-64 builds without the compile gate;
// everywhere else every tier above scalar is "not compiled in".
#if defined(__x86_64__) && !defined(EXPLAIN3D_NO_SIMD)
constexpr bool kSimdCompiled = true;
#else
constexpr bool kSimdCompiled = false;
#endif

bool CpuHasTier(IsaTier tier) {
  if (tier == IsaTier::kScalar) return true;
  if (!kSimdCompiled) return false;
#if defined(__x86_64__)
  switch (tier) {
    case IsaTier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case IsaTier::kAvx512:
      // The uint16 Levenshtein lanes need BW; F alone (Knights-era
      // hardware) gets the AVX2 kernels instead.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
    default:
      return true;
  }
#else
  return false;
#endif
}

IsaTier ParseTierName(const char* name, IsaTier fallback) {
  if (name == nullptr) return fallback;
  if (std::strcmp(name, "scalar") == 0) return IsaTier::kScalar;
  if (std::strcmp(name, "avx2") == 0) return IsaTier::kAvx2;
  if (std::strcmp(name, "avx512") == 0) return IsaTier::kAvx512;
  return fallback;  // unknown spelling: ignore the override
}

IsaTier Detect() {
  IsaTier best = IsaTier::kScalar;
  if (CpuHasTier(IsaTier::kAvx512)) {
    best = IsaTier::kAvx512;
  } else if (CpuHasTier(IsaTier::kAvx2)) {
    best = IsaTier::kAvx2;
  }
  // Env override can only clamp DOWN to a supported tier: requesting
  // avx512 on an avx2-only CPU keeps the detected avx2.
  IsaTier wanted = ParseTierName(std::getenv("EXPLAIN3D_SIMD_TIER"), best);
  return static_cast<int>(wanted) < static_cast<int>(best) ? wanted : best;
}

// -1 = no test override. Relaxed is enough: tests flip it between
// single-threaded kernel calls.
std::atomic<int> g_test_override{-1};

}  // namespace

IsaTier DetectedTier() {
  static const IsaTier tier = Detect();  // once per process
  return tier;
}

IsaTier ActiveTier() {
  int forced = g_test_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<IsaTier>(forced);
  return DetectedTier();
}

bool TierSupported(IsaTier tier) { return CpuHasTier(tier); }

const char* TierName(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void SetActiveTierForTest(IsaTier tier) {
  g_test_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void ClearActiveTierForTest() {
  g_test_override.store(-1, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace explain3d
