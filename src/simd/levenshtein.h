// Batched Levenshtein distance kernels.
//
// The Levenshtein scoring path compares ONE query string (a T1 key cell)
// against MANY candidate strings (the T2 cells of that tuple's candidate
// pairs). The vector tiers exploit that shape: one DP sweep advances 16
// (AVX2) / 32 (AVX-512) independent candidate pairs in uint16 lanes —
// the query row is broadcast, the candidate characters live in a
// transposed column buffer, and each lane reads its answer at its own
// final column. Cells past a lane's length are computed but harmless
// (the DP recurrence only flows left-to-right, and the answer column
// never reads them).
//
// Distances are exact small integers at every tier, so similarities
// normalized from them (similarity.cc's 1 - dist/max(len)) are
// bit-identical to the scalar DP.

#ifndef EXPLAIN3D_SIMD_LEVENSHTEIN_H_
#define EXPLAIN3D_SIMD_LEVENSHTEIN_H_

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"

namespace explain3d {
namespace simd {

/// Longest string the lane-parallel DP accepts. Pairs where either side
/// exceeds it are scored with the scalar row DP instead (still exact);
/// the cap bounds the kernel's stack buffers and keeps every uint16 lane
/// value far from overflow.
constexpr size_t kLevMaxBatchLen = 256;

/// Exact edit distance of (a, b) — the scalar single-pair oracle (same
/// integer the similarity.cc DP produces).
uint32_t LevenshteinDistance(const char* a, size_t la, const char* b,
                             size_t lb);

/// out[k] = exact edit distance of (query, cands[k]) for k < n.
/// `cand_lens[k]` is the byte length of cands[k]. Over-cap pairs fall
/// back to the scalar DP inside the call; results are identical at every
/// tier. `tier` must satisfy TierSupported.
void LevenshteinBatchTier(IsaTier tier, const char* query, size_t qlen,
                          const char* const* cands, const size_t* cand_lens,
                          size_t n, uint32_t* out);

/// Same, via ActiveTier().
void LevenshteinBatch(const char* query, size_t qlen,
                      const char* const* cands, const size_t* cand_lens,
                      size_t n, uint32_t* out);

}  // namespace simd
}  // namespace explain3d

#endif  // EXPLAIN3D_SIMD_LEVENSHTEIN_H_
