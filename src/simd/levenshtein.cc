#include "simd/levenshtein.h"

#include <algorithm>
#include <vector>

#if defined(__x86_64__) && !defined(EXPLAIN3D_NO_SIMD)
#include <immintrin.h>
#define EXPLAIN3D_SIMD_X86 1
#endif

namespace explain3d {
namespace simd {

uint32_t LevenshteinDistance(const char* a, size_t la, const char* b,
                             size_t lb) {
  if (la == 0) return static_cast<uint32_t>(lb);
  if (lb == 0) return static_cast<uint32_t>(la);
  // Two-row DP; thread-local scratch keeps the hot loop allocation-free.
  static thread_local std::vector<uint32_t> prev_s, cur_s;
  prev_s.resize(lb + 1);
  cur_s.resize(lb + 1);
  uint32_t* prev = prev_s.data();
  uint32_t* cur = cur_s.data();
  for (size_t j = 0; j <= lb; ++j) prev[j] = static_cast<uint32_t>(j);
  for (size_t i = 1; i <= la; ++i) {
    cur[0] = static_cast<uint32_t>(i);
    for (size_t j = 1; j <= lb; ++j) {
      uint32_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[lb];
}

#if defined(EXPLAIN3D_SIMD_X86)

namespace {

// 16 candidate pairs per DP sweep in uint16 lanes. The query is shared
// (broadcast per row); candidate characters sit in a transposed buffer so
// column j of every lane loads as one vector. Lane l's answer is the
// final row at ITS column lens[l]; columns past a lane's length hold
// junk the answer column never depends on (the recurrence reads only
// columns <= j). All values stay <= kLevMaxBatchLen + 1, far below the
// uint16 range, so plain wrapping adds are exact.
__attribute__((target("avx2"))) void LevBatchAvx2(
    const char* q, size_t qlen, const char* const* cands, const size_t* lens,
    size_t n, uint32_t* out) {
  constexpr size_t kW = 16;
  size_t maxlb = 0;
  for (size_t l = 0; l < n; ++l) maxlb = std::max(maxlb, lens[l]);
  alignas(32) uint16_t tchars[kLevMaxBatchLen * kW];
  for (size_t j = 0; j < maxlb; ++j) {
    for (size_t l = 0; l < kW; ++l) {
      tchars[j * kW + l] =
          (l < n && j < lens[l])
              ? static_cast<uint16_t>(static_cast<unsigned char>(cands[l][j]))
              : 0;
    }
  }
  alignas(32) uint16_t rows[2][(kLevMaxBatchLen + 1) * kW];
  uint16_t* prev = rows[0];
  uint16_t* cur = rows[1];
  for (size_t j = 0; j <= maxlb; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(prev + j * kW),
                       _mm256_set1_epi16(static_cast<short>(j)));
  }
  const __m256i ones = _mm256_set1_epi16(1);
  for (size_t i = 1; i <= qlen; ++i) {
    __m256i qc = _mm256_set1_epi16(
        static_cast<short>(static_cast<unsigned char>(q[i - 1])));
    __m256i left = _mm256_set1_epi16(static_cast<short>(i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(cur), left);
    for (size_t j = 1; j <= maxlb; ++j) {
      __m256i cj = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(tchars + (j - 1) * kW));
      // cmpeq yields -1 on equal lanes; 1 + (-1) = substitution cost 0.
      __m256i cost = _mm256_add_epi16(ones, _mm256_cmpeq_epi16(qc, cj));
      __m256i diag = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(prev + (j - 1) * kW));
      __m256i up =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(prev + j * kW));
      __m256i val = _mm256_min_epu16(
          _mm256_add_epi16(_mm256_min_epu16(up, left), ones),
          _mm256_add_epi16(diag, cost));
      _mm256_store_si256(reinterpret_cast<__m256i*>(cur + j * kW), val);
      left = val;
    }
    std::swap(prev, cur);
  }
  for (size_t l = 0; l < n; ++l) out[l] = prev[lens[l] * kW + l];
}

// Same sweep, 32 lanes (needs AVX-512BW for the epi16 compare/min).
__attribute__((target("avx512f,avx512bw"))) void LevBatchAvx512(
    const char* q, size_t qlen, const char* const* cands, const size_t* lens,
    size_t n, uint32_t* out) {
  constexpr size_t kW = 32;
  size_t maxlb = 0;
  for (size_t l = 0; l < n; ++l) maxlb = std::max(maxlb, lens[l]);
  alignas(64) uint16_t tchars[kLevMaxBatchLen * kW];
  for (size_t j = 0; j < maxlb; ++j) {
    for (size_t l = 0; l < kW; ++l) {
      tchars[j * kW + l] =
          (l < n && j < lens[l])
              ? static_cast<uint16_t>(static_cast<unsigned char>(cands[l][j]))
              : 0;
    }
  }
  alignas(64) uint16_t rows[2][(kLevMaxBatchLen + 1) * kW];
  uint16_t* prev = rows[0];
  uint16_t* cur = rows[1];
  for (size_t j = 0; j <= maxlb; ++j) {
    _mm512_store_si512(prev + j * kW,
                       _mm512_set1_epi16(static_cast<short>(j)));
  }
  const __m512i ones = _mm512_set1_epi16(1);
  for (size_t i = 1; i <= qlen; ++i) {
    __m512i qc = _mm512_set1_epi16(
        static_cast<short>(static_cast<unsigned char>(q[i - 1])));
    __m512i left = _mm512_set1_epi16(static_cast<short>(i));
    _mm512_store_si512(cur, left);
    for (size_t j = 1; j <= maxlb; ++j) {
      __m512i cj = _mm512_load_si512(tchars + (j - 1) * kW);
      __m512i cost = _mm512_add_epi16(
          ones, _mm512_movm_epi16(_mm512_cmpeq_epi16_mask(qc, cj)));
      __m512i diag = _mm512_load_si512(prev + (j - 1) * kW);
      __m512i up = _mm512_load_si512(prev + j * kW);
      __m512i val = _mm512_min_epu16(
          _mm512_add_epi16(_mm512_min_epu16(up, left), ones),
          _mm512_add_epi16(diag, cost));
      _mm512_store_si512(cur + j * kW, val);
      left = val;
    }
    std::swap(prev, cur);
  }
  for (size_t l = 0; l < n; ++l) out[l] = prev[lens[l] * kW + l];
}

}  // namespace

#endif  // EXPLAIN3D_SIMD_X86

void LevenshteinBatchTier(IsaTier tier, const char* query, size_t qlen,
                          const char* const* cands, const size_t* cand_lens,
                          size_t n, uint32_t* out) {
#if defined(EXPLAIN3D_SIMD_X86)
  if (tier != IsaTier::kScalar && qlen <= kLevMaxBatchLen) {
    const size_t width = tier == IsaTier::kAvx512 ? 32 : 16;
    for (size_t start = 0; start < n; start += width) {
      size_t chunk = std::min(width, n - start);
      // Compact over-cap candidates out of the lane set; they take the
      // scalar DP (identical integers) so a single long string cannot
      // force the whole batch off the vector path.
      const char* ptrs[32];
      size_t lens[32];
      size_t lane_idx[32];
      uint32_t dist[32];
      size_t m = 0;
      for (size_t k = 0; k < chunk; ++k) {
        size_t idx = start + k;
        if (cand_lens[idx] > kLevMaxBatchLen) {
          out[idx] =
              LevenshteinDistance(query, qlen, cands[idx], cand_lens[idx]);
        } else {
          ptrs[m] = cands[idx];
          lens[m] = cand_lens[idx];
          lane_idx[m] = idx;
          ++m;
        }
      }
      if (m == 0) continue;
      if (tier == IsaTier::kAvx512) {
        LevBatchAvx512(query, qlen, ptrs, lens, m, dist);
      } else {
        LevBatchAvx2(query, qlen, ptrs, lens, m, dist);
      }
      for (size_t l = 0; l < m; ++l) out[lane_idx[l]] = dist[l];
    }
    return;
  }
#else
  (void)tier;
#endif
  for (size_t k = 0; k < n; ++k) {
    out[k] = LevenshteinDistance(query, qlen, cands[k], cand_lens[k]);
  }
}

void LevenshteinBatch(const char* query, size_t qlen,
                      const char* const* cands, const size_t* cand_lens,
                      size_t n, uint32_t* out) {
  LevenshteinBatchTier(ActiveTier(), query, qlen, cands, cand_lens, n, out);
}

}  // namespace simd
}  // namespace explain3d
