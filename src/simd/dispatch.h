// Runtime ISA dispatch for the stage-1 SIMD kernels.
//
// The kernel layer (simd/intersect.h, simd/levenshtein.h) compiles up to
// three implementations of each kernel — scalar, AVX2, AVX-512 — and
// selects one at runtime from CPUID. The SCALAR path is the bit-identical
// oracle: every vector path must produce exactly the same counts,
// distances, candidate sets, and scores at any input (enforced by
// tests/simd_kernels_test.cc and the stage-1 equivalence suites), so tier
// selection can never change a result, only its latency.
//
// Selection order:
//   1. compile gate: -DEXPLAIN3D_NO_SIMD (CMake EXPLAIN3D_SIMD=OFF) or a
//      non-x86 target compiles the vector kernels out entirely;
//   2. env override: EXPLAIN3D_SIMD_TIER=scalar|avx2|avx512 clamps the
//      tier (requests above hardware support clamp down);
//   3. CPUID: the highest tier the CPU supports (AVX-512 needs F+BW).

#ifndef EXPLAIN3D_SIMD_DISPATCH_H_
#define EXPLAIN3D_SIMD_DISPATCH_H_

namespace explain3d {
namespace simd {

/// Kernel implementation tiers, ordered weakest to strongest.
enum class IsaTier : int {
  kScalar = 0,  ///< portable C++ — the bit-identical oracle
  kAvx2 = 1,    ///< 256-bit integer kernels
  kAvx512 = 2,  ///< 512-bit integer kernels (requires AVX-512 F + BW)
};

/// The tier every dispatched kernel call uses right now (detection ∧ env
/// override ∧ test override). Cheap: one relaxed atomic load.
IsaTier ActiveTier();

/// The tier CPUID detection picked, before any test override (but after
/// the EXPLAIN3D_SIMD_TIER env clamp). Stable for the process lifetime.
IsaTier DetectedTier();

/// True when `tier`'s kernels are compiled in AND the CPU can run them.
/// kScalar is always supported.
bool TierSupported(IsaTier tier);

/// "scalar" / "avx2" / "avx512".
const char* TierName(IsaTier tier);

/// Test hook: forces ActiveTier() to `tier` (must be supported) so the
/// equivalence suites can drive every tier in one process. NOT thread
/// safe with respect to concurrent kernel calls — tests only.
void SetActiveTierForTest(IsaTier tier);

/// Test hook: drops the SetActiveTierForTest override.
void ClearActiveTierForTest();

}  // namespace simd
}  // namespace explain3d

#endif  // EXPLAIN3D_SIMD_DISPATCH_H_
