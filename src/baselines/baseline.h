// Shared plumbing of the comparison algorithms (Section 5.1.3).
//
// RSWOOSH, THRESHOLD and GREEDY all end the same way: given a refined
// (deterministic) evidence mapping, tuples without a match become
// provenance-based explanations and connected components with unequal
// impacts yield value-based explanations. DeriveExplanationsFromEvidence
// implements that shared step.

#ifndef EXPLAIN3D_BASELINES_BASELINE_H_
#define EXPLAIN3D_BASELINES_BASELINE_H_

#include "core/explanation.h"
#include "matching/tuple_mapping.h"
#include "provenance/canonical.h"

namespace explain3d {

/// Derives (Δ, δ | evidence) from a fixed evidence mapping: unmatched
/// tuples → Δ; evidence components whose side impacts disagree → one
/// value-based explanation on a side-2 tuple of the component.
ExplanationSet DeriveExplanationsFromEvidence(const CanonicalRelation& t1,
                                              const CanonicalRelation& t2,
                                              const TupleMapping& evidence);

}  // namespace explain3d

#endif  // EXPLAIN3D_BASELINES_BASELINE_H_
