#include "baselines/baseline.h"

#include <cmath>
#include <map>
#include <vector>

namespace explain3d {

ExplanationSet DeriveExplanationsFromEvidence(const CanonicalRelation& t1,
                                              const CanonicalRelation& t2,
                                              const TupleMapping& evidence) {
  ExplanationSet out;
  out.evidence = evidence;

  std::vector<size_t> deg1(t1.size(), 0), deg2(t2.size(), 0);
  size_t n = t1.size() + t2.size();
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const TupleMatch& m : evidence) {
    ++deg1[m.t1];
    ++deg2[m.t2];
    size_t ra = find(m.t1), rb = find(t1.size() + m.t2);
    if (ra != rb) parent[ra] = rb;
  }

  for (size_t i = 0; i < t1.size(); ++i) {
    if (deg1[i] == 0) out.delta.push_back({Side::kLeft, i});
  }
  for (size_t j = 0; j < t2.size(); ++j) {
    if (deg2[j] == 0) out.delta.push_back({Side::kRight, j});
  }

  // Component impact balances; one value fix per imbalanced component,
  // placed on a side-2 member (mirrors explain3d's canonical decode).
  struct Balance {
    double sum1 = 0, sum2 = 0;
    size_t fix2 = static_cast<size_t>(-1);
  };
  std::map<size_t, Balance> comps;
  for (size_t i = 0; i < t1.size(); ++i) {
    if (deg1[i] > 0) comps[find(i)].sum1 += t1.tuples[i].impact;
  }
  for (size_t j = 0; j < t2.size(); ++j) {
    if (deg2[j] > 0) {
      Balance& b = comps[find(t1.size() + j)];
      b.sum2 += t2.tuples[j].impact;
      if (b.fix2 == static_cast<size_t>(-1)) b.fix2 = j;
    }
  }
  for (const auto& [root, b] : comps) {
    (void)root;
    if (!ImpactsDiffer(b.sum1, b.sum2)) continue;
    if (b.fix2 == static_cast<size_t>(-1)) continue;  // one-sided component
    double old_impact = t2.tuples[b.fix2].impact;
    out.value_changes.push_back(
        {Side::kRight, b.fix2, old_impact, old_impact + (b.sum1 - b.sum2)});
  }
  out.Normalize();
  return out;
}

}  // namespace explain3d
