#include "baselines/greedy.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace explain3d {

ExplanationSet GreedyBaseline(const CanonicalRelation& t1,
                              const CanonicalRelation& t2,
                              const TupleMapping& mapping,
                              const AttributeMatch& attr,
                              const ProbabilityModel& prob) {
  auto strict = [](AggFunc f) {
    return f == AggFunc::kAvg || f == AggFunc::kMax || f == AggFunc::kMin;
  };
  bool strict11 = strict(t1.agg) || strict(t2.agg);
  bool cap1 = attr.Side1DegreeCapped() || strict11;
  bool cap2 = attr.Side2DegreeCapped() || strict11;

  // Visit matches by decreasing probability.
  std::vector<size_t> order(mapping.size());
  for (size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return mapping[a].p > mapping[b].p;
  });

  // Incremental state: per-tuple degree; per side-2 tuple the assigned
  // side-1 impact sum (used for the group value term). With cap1 (the
  // usual case) groups key on side-2 tuples; with only cap2 they key on
  // side-1 tuples symmetrically.
  bool groups_on_side2 = cap1 || !cap2;
  std::vector<size_t> deg1(t1.size(), 0), deg2(t2.size(), 0);
  std::vector<double> group_sum(groups_on_side2 ? t2.size() : t1.size(),
                                0.0);

  auto group_term = [&](size_t head, size_t count, double sum) {
    if (count == 0) return prob.a;
    double head_impact = groups_on_side2 ? t2.tuples[head].impact
                                         : t1.tuples[head].impact;
    return ImpactsDiffer(sum, head_impact) ? prob.b : prob.c;
  };

  TupleMapping evidence;
  for (size_t k : order) {
    const TupleMatch& m = mapping[k];
    if (cap1 && deg1[m.t1] >= 1) continue;  // valid-mapping restriction
    if (cap2 && deg2[m.t2] >= 1) continue;
    size_t head = groups_on_side2 ? m.t2 : m.t1;
    size_t member = groups_on_side2 ? m.t1 : m.t2;
    double member_impact = groups_on_side2 ? t1.tuples[member].impact
                                           : t2.tuples[member].impact;
    size_t head_deg = groups_on_side2 ? deg2[m.t2] : deg1[m.t1];
    size_t member_deg = groups_on_side2 ? deg1[m.t1] : deg2[m.t2];

    // Objective delta of adding this match.
    double p = std::clamp(m.p, 1e-9, 1.0 - 1e-9);
    double delta = std::log(p) - std::log(1.0 - p);
    if (member_deg == 0) delta += prob.c - prob.a;  // member now kept
    double before = group_term(head, head_deg, group_sum[head]);
    double after =
        group_term(head, head_deg + 1, group_sum[head] + member_impact);
    delta += after - before;

    if (delta <= 0) continue;
    evidence.push_back(m);
    ++deg1[m.t1];
    ++deg2[m.t2];
    group_sum[head] += member_impact;
  }

  SortMapping(&evidence);
  return DeriveExplanationsFromEvidence(t1, t2, evidence);
}

}  // namespace explain3d
