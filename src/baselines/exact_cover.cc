#include "baselines/exact_cover.h"

#include <unordered_map>

#include "core/partitioning.h"
#include "milp/branch_and_bound.h"

namespace explain3d {

Result<ExplanationSet> ExactCoverBaseline(const CanonicalRelation& t1,
                                          const CanonicalRelation& t2,
                                          const TupleMapping& mapping) {
  TupleMapping evidence;

  // Independent components keep the IPs small (CPLEX presolve would do
  // the same for the paper's implementation).
  std::vector<SubProblem> comps =
      ComponentSubproblems(t1.size(), t2.size(), mapping);
  for (const SubProblem& comp : comps) {
    if (comp.match_ids.empty()) continue;

    milp::Model model;
    // One binary per set (side-2 tuple); objective +1 per selected set.
    std::unordered_map<size_t, milp::VarId> set_var;
    for (size_t j : comp.t2_ids) {
      set_var.emplace(j, model.AddBinary("s" + std::to_string(j), 1.0));
    }
    // Element coverage: Σ_{sets containing i} s_j ≤ 1, objective +1 per
    // covered element (the coverage sum itself).
    std::unordered_map<size_t, milp::LinExpr> element_cover;
    for (size_t mid : comp.match_ids) {
      const TupleMatch& m = mapping[mid];
      element_cover[m.t1].Add(set_var[m.t2], 1.0);
    }
    for (auto& [elem, cover] : element_cover) {
      (void)elem;
      model.AddConstraint(cover, milp::Relation::kLe, 1.0);
      for (const auto& [var, coeff] : cover.terms()) {
        model.AddObjective(var, coeff);  // covered elements reward
      }
    }

    milp::MilpOptions opts;
    opts.time_limit_seconds = 10;
    milp::Solution sol = milp::MilpSolver(model, opts).Solve();
    if (!sol.has_solution()) {
      return Status::Internal("exact-cover IP failed on a component");
    }

    // Evidence: each covered element pairs with its unique selected set.
    std::unordered_map<size_t, size_t> element_used;  // element -> degree
    for (size_t mid : comp.match_ids) {
      const TupleMatch& m = mapping[mid];
      if (sol.values[set_var[m.t2]] > 0.5 && element_used[m.t1] == 0) {
        evidence.emplace_back(m.t1, m.t2, m.p);
        element_used[m.t1] = 1;
      }
    }
  }

  SortMapping(&evidence);
  return DeriveExplanationsFromEvidence(t1, t2, evidence);
}

}  // namespace explain3d
