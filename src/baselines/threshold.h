// THRESHOLD baseline (Section 5.1.3): keep initial matches with p ≥ θ as
// the evidence mapping, then derive explanations like RSWOOSH does. The
// paper evaluates θ = 0.9 ("THRESHOLD-0.9").

#ifndef EXPLAIN3D_BASELINES_THRESHOLD_H_
#define EXPLAIN3D_BASELINES_THRESHOLD_H_

#include "baselines/baseline.h"

namespace explain3d {

/// Refines `mapping` by the fixed probability threshold and derives
/// explanations from the surviving matches.
ExplanationSet ThresholdBaseline(const CanonicalRelation& t1,
                                 const CanonicalRelation& t2,
                                 const TupleMapping& mapping,
                                 double threshold = 0.9);

}  // namespace explain3d

#endif  // EXPLAIN3D_BASELINES_THRESHOLD_H_
