#include "baselines/rswoosh.h"

#include <algorithm>
#include <list>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "matching/similarity.h"

namespace explain3d {

namespace {

/// A (possibly merged) record: token set plus the canonical tuples it
/// subsumes from each side.
struct SwooshRecord {
  std::vector<std::string> tokens;  // sorted unique
  std::vector<size_t> members1;
  std::vector<size_t> members2;
};

std::vector<std::string> KeyTokens(const CanonicalTuple& t) {
  std::vector<std::string> toks;
  for (const Value& v : t.key) {
    std::vector<std::string> part = TokenizeWords(v.ToDisplayString());
    toks.insert(toks.end(), part.begin(), part.end());
  }
  std::sort(toks.begin(), toks.end());
  toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
  return toks;
}

SwooshRecord Merge(const SwooshRecord& a, const SwooshRecord& b) {
  SwooshRecord m;
  std::set_union(a.tokens.begin(), a.tokens.end(), b.tokens.begin(),
                 b.tokens.end(), std::back_inserter(m.tokens));
  m.members1 = a.members1;
  m.members1.insert(m.members1.end(), b.members1.begin(), b.members1.end());
  m.members2 = a.members2;
  m.members2.insert(m.members2.end(), b.members2.begin(), b.members2.end());
  return m;
}

}  // namespace

ExplanationSet RSwooshBaseline(const CanonicalRelation& t1,
                               const CanonicalRelation& t2,
                               double jaccard_threshold) {
  // Input queue I and resolved set R of the R-Swoosh algorithm.
  std::list<SwooshRecord> input;
  for (size_t i = 0; i < t1.size(); ++i) {
    SwooshRecord r;
    r.tokens = KeyTokens(t1.tuples[i]);
    r.members1 = {i};
    input.push_back(std::move(r));
  }
  for (size_t j = 0; j < t2.size(); ++j) {
    SwooshRecord r;
    r.tokens = KeyTokens(t2.tuples[j]);
    r.members2 = {j};
    input.push_back(std::move(r));
  }

  std::list<SwooshRecord> resolved;
  while (!input.empty()) {
    SwooshRecord current = std::move(input.front());
    input.pop_front();
    bool merged = false;
    for (auto it = resolved.begin(); it != resolved.end(); ++it) {
      if (JaccardOfTokenSets(current.tokens, it->tokens) >=
          jaccard_threshold) {
        SwooshRecord m = Merge(current, *it);
        resolved.erase(it);
        input.push_back(std::move(m));  // re-resolve the merge result
        merged = true;
        break;
      }
    }
    if (!merged) resolved.push_back(std::move(current));
  }

  // Cross-dataset pairs inside each cluster form the evidence; R-Swoosh
  // matches are deterministic, so p is clamped just below 1.
  TupleMapping evidence;
  for (const SwooshRecord& r : resolved) {
    for (size_t i : r.members1) {
      for (size_t j : r.members2) {
        evidence.emplace_back(i, j, 0.99);
      }
    }
  }
  SortMapping(&evidence);
  return DeriveExplanationsFromEvidence(t1, t2, evidence);
}

}  // namespace explain3d
