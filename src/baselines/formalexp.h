// FORMALEXP baseline: a single-dataset explanation framework in the
// style of Roy & Suciu (SIGMOD 2014), adapted to the disjoint-dataset
// setting exactly as Section 5.1.3 describes.
//
// The adaptation compares the two results and asks, per dataset, "why is
// this result high (resp. low)?". Candidate explanations are conjunctive
// predicates (attr = value) over the provenance relation; a predicate's
// score is its intervention effect — how much deleting the tuples it
// covers moves the query result toward the other query's result. The
// top-k predicates are returned and the tuples they cover become
// provenance-based explanations. The method produces no evidence mapping
// and no value-based explanations, which caps its achievable recall.

#ifndef EXPLAIN3D_BASELINES_FORMALEXP_H_
#define EXPLAIN3D_BASELINES_FORMALEXP_H_

#include "baselines/baseline.h"
#include "common/status.h"
#include "provenance/provenance.h"

namespace explain3d {

/// FORMALEXP options; the paper evaluates top_k = 15.
struct FormalExpOptions {
  size_t top_k = 15;
  /// Attributes with more distinct values than this do not form
  /// predicates (they would name individual tuples, not patterns).
  size_t max_attr_cardinality = 256;
};

/// Runs the adapted FORMALEXP on both provenance relations and maps the
/// covered provenance tuples to canonical-tuple explanations.
Result<ExplanationSet> FormalExpBaseline(const CanonicalRelation& t1,
                                         const CanonicalRelation& t2,
                                         const ProvenanceRelation& p1,
                                         const ProvenanceRelation& p2,
                                         const FormalExpOptions& opts);

}  // namespace explain3d

#endif  // EXPLAIN3D_BASELINES_FORMALEXP_H_
