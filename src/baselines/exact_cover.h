// EXACTCOVER baseline (Section 5.1.3): the integer-programming adaptation
// of the Exact Cover problem used in the paper's NP-completeness proof.
//
// Side-1 canonical tuples are elements; side-2 tuples are sets; an
// element belongs to a set when an initial tuple match connects them.
// The decision problem becomes an optimization: pick sets such that each
// element is covered at most once and the number of covered elements
// plus selected sets is maximized. The baseline ignores impacts and
// match probabilities, which is why it performs poorly.

#ifndef EXPLAIN3D_BASELINES_EXACT_COVER_H_
#define EXPLAIN3D_BASELINES_EXACT_COVER_H_

#include "baselines/baseline.h"
#include "common/status.h"

namespace explain3d {

/// Solves the exact-cover adaptation (per connected component, through
/// the MILP solver) and derives explanations from the resulting
/// element→set assignment.
Result<ExplanationSet> ExactCoverBaseline(const CanonicalRelation& t1,
                                          const CanonicalRelation& t2,
                                          const TupleMapping& mapping);

}  // namespace explain3d

#endif  // EXPLAIN3D_BASELINES_EXACT_COVER_H_
