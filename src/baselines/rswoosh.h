// RSWOOSH baseline: the R-Swoosh generic entity-resolution algorithm
// (Benjelloun et al., VLDB Journal 2009) applied across the two canonical
// relations.
//
// R-Swoosh maintains a set of resolved records; each incoming record is
// matched against them, and matching records merge (here: union of token
// sets and member lists) until a fixpoint. Matches are deterministic
// (token Jaccard ≥ threshold, default 0.75 per Section 5.1.3), so every
// derived cross-dataset pair enters the evidence with probability
// clamped just below 1.

#ifndef EXPLAIN3D_BASELINES_RSWOOSH_H_
#define EXPLAIN3D_BASELINES_RSWOOSH_H_

#include "baselines/baseline.h"

namespace explain3d {

/// Runs R-Swoosh over the union of both canonical relations and derives
/// explanations from the cross-dataset pairs of each merged cluster.
ExplanationSet RSwooshBaseline(const CanonicalRelation& t1,
                               const CanonicalRelation& t2,
                               double jaccard_threshold = 0.75);

}  // namespace explain3d

#endif  // EXPLAIN3D_BASELINES_RSWOOSH_H_
