#include "baselines/formalexp.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace explain3d {

namespace {

/// A candidate predicate: one attribute pinned to one value.
struct Predicate {
  size_t column;
  Value value;
  double covered_impact = 0;
  std::vector<size_t> covered_rows;
};

/// Enumerates (attr = value) predicates over the provenance relation,
/// skipping near-key attributes.
std::vector<Predicate> EnumeratePredicates(const ProvenanceRelation& prov,
                                           size_t max_cardinality) {
  std::vector<Predicate> out;
  const Table& t = prov.table;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    std::map<Value, Predicate> by_value;
    bool usable = true;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      const Value& v = t.row(r)[c];
      Predicate& p = by_value[v];
      p.column = c;
      p.value = v;
      p.covered_impact += prov.impact[r];
      p.covered_rows.push_back(r);
      if (by_value.size() > max_cardinality) {
        usable = false;
        break;
      }
    }
    if (!usable || by_value.size() <= 1) continue;
    for (auto& [v, p] : by_value) {
      (void)v;
      out.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace

Result<ExplanationSet> FormalExpBaseline(const CanonicalRelation& t1,
                                         const CanonicalRelation& t2,
                                         const ProvenanceRelation& p1,
                                         const ProvenanceRelation& p2,
                                         const FormalExpOptions& opts) {
  double r1 = p1.TotalImpact();
  double r2 = p2.TotalImpact();
  double diff = std::abs(r1 - r2);

  // Intervention effect of deleting `covered_impact` from the high side:
  // the residual disagreement after the intervention.
  struct Scored {
    double effect;
    Side side;
    const Predicate* pred;
  };
  std::vector<Predicate> preds1 =
      EnumeratePredicates(p1, opts.max_attr_cardinality);
  std::vector<Predicate> preds2 =
      EnumeratePredicates(p2, opts.max_attr_cardinality);
  std::vector<Scored> scored;
  for (const Predicate& p : preds1) {
    double after = std::abs((r1 - p.covered_impact) - r2);
    scored.push_back({diff - after, Side::kLeft, &p});
  }
  for (const Predicate& p : preds2) {
    double after = std::abs(r1 - (r2 - p.covered_impact));
    scored.push_back({diff - after, Side::kRight, &p});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.effect != b.effect) return a.effect > b.effect;
                     return a.pred->covered_rows.size() <
                            b.pred->covered_rows.size();
                   });

  // Top-k predicates; covered provenance rows map to canonical tuples.
  std::set<size_t> prov_rows1, prov_rows2;
  for (size_t k = 0; k < scored.size() && k < opts.top_k; ++k) {
    if (scored[k].effect <= 0) break;  // interventions must help
    auto& rows =
        scored[k].side == Side::kLeft ? prov_rows1 : prov_rows2;
    for (size_t r : scored[k].pred->covered_rows) rows.insert(r);
  }

  ExplanationSet out;
  auto map_to_canonical = [](const CanonicalRelation& rel,
                             const std::set<size_t>& rows, Side side,
                             std::vector<ProvExplanation>* delta) {
    for (size_t c = 0; c < rel.size(); ++c) {
      for (size_t pr : rel.tuples[c].prov_rows) {
        if (rows.count(pr)) {
          delta->push_back({side, c});
          break;
        }
      }
    }
  };
  map_to_canonical(t1, prov_rows1, Side::kLeft, &out.delta);
  map_to_canonical(t2, prov_rows2, Side::kRight, &out.delta);
  out.Normalize();
  return out;
}

}  // namespace explain3d
