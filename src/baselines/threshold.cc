#include "baselines/threshold.h"

namespace explain3d {

ExplanationSet ThresholdBaseline(const CanonicalRelation& t1,
                                 const CanonicalRelation& t2,
                                 const TupleMapping& mapping,
                                 double threshold) {
  TupleMapping evidence;
  for (const TupleMatch& m : mapping) {
    if (m.p >= threshold) evidence.push_back(m);
  }
  return DeriveExplanationsFromEvidence(t1, t2, evidence);
}

}  // namespace explain3d
