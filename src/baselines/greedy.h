// GREEDY baseline (Section 5.1.3): explain3d's objective function built
// greedily instead of by constrained optimization.
//
// Matches are visited in decreasing probability; a match joins the
// evidence when it (a) respects the valid-mapping cardinality of the
// attribute match and (b) improves the Section-3.1 objective value under
// the derived explanations. Greedy reaches local maxima — exactly the
// failure mode the paper's evaluation shows.

#ifndef EXPLAIN3D_BASELINES_GREEDY_H_
#define EXPLAIN3D_BASELINES_GREEDY_H_

#include "baselines/baseline.h"
#include "core/probability_model.h"
#include "matching/attribute_match.h"

namespace explain3d {

/// Runs the greedy evidence construction and derives explanations.
ExplanationSet GreedyBaseline(const CanonicalRelation& t1,
                              const CanonicalRelation& t2,
                              const TupleMapping& mapping,
                              const AttributeMatch& attr,
                              const ProbabilityModel& prob);

}  // namespace explain3d

#endif  // EXPLAIN3D_BASELINES_GREEDY_H_
