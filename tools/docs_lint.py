#!/usr/bin/env python3
"""Docs lint: fail on broken relative links in the repo's *.md files.

Scans every tracked-ish Markdown file (skipping build output and VCS
internals), extracts inline links and images, and verifies that each
relative target exists on disk. External schemes (http/https/mailto)
and pure in-page anchors are ignored; a `#fragment` suffix on a
relative link is stripped before the existence check.

Usage:  python3 tools/docs_lint.py [repo_root]
Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link: `file:line: broken link -> target`).
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", ".claude", "_deps", "node_modules"}

# Inline [text](target) and ![alt](target); stops at the first ')' or
# whitespace inside the URL, which is how every link in this repo is
# written (no titles, no parenthesized URLs).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def iter_md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path):
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                    continue  # http:, https:, mailto:, ...
                if target.startswith("#"):
                    continue  # in-page anchor
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), rel))
                if not os.path.exists(resolved):
                    errors.append((lineno, target))
    return errors


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    broken = 0
    checked = 0
    for path in iter_md_files(root):
        checked += 1
        for lineno, target in check_file(path):
            print(f"{os.path.relpath(path, root)}:{lineno}: "
                  f"broken link -> {target}")
            broken += 1
    print(f"docs-lint: {checked} markdown files, {broken} broken links")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
