// explain3d_store: inspect, verify, and garbage-collect an on-disk
// artifact store (storage/artifact_store.h).
//
//   explain3d_store inspect <dir>   manifest summary + per-file segments
//   explain3d_store verify  <dir>   full checksum pass; exit 1 on damage
//   explain3d_store gc      <dir>   delete files no manifest names
//
// Exit codes: 0 ok, 1 store damaged (corruption/IO error), 2 usage.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/artifact_store.h"
#include "storage/io.h"
#include "storage/snapshot.h"

namespace {

using explain3d::Result;
using explain3d::Status;
using explain3d::storage::ArtifactStore;
using explain3d::storage::StoreInfo;

int Fail(const Status& status) {
  std::fprintf(stderr, "explain3d_store: %s\n", status.ToString().c_str());
  return 1;
}

int Inspect(ArtifactStore& store) {
  Result<StoreInfo> info = store.Info();
  if (!info.ok()) return Fail(info.status());
  std::printf("store:      %s\n", store.dir().c_str());
  std::printf("commit_seq: %" PRIu64 "\n", info.value().commit_seq);
  std::printf("files:      %zu committed, %zu orphan\n",
              info.value().files.size(), info.value().orphan_files);
  for (const auto& entry : info.value().files) {
    std::printf("  %-28s %10" PRIu64 " B  checksum %016" PRIx64 "\n",
                entry.file.c_str(), entry.size, entry.checksum);
    if (entry.file.rfind("art-", 0) != 0) continue;
    // Per-snapshot segment map — which columnar arrays the file carries.
    auto path = explain3d::storage::JoinPath(store.dir(), entry.file);
    auto bytes = explain3d::storage::ReadFileBytes(path);
    if (!bytes.ok()) return Fail(bytes.status());
    auto segments = explain3d::storage::ListSegments(
        bytes.value().data(), bytes.value().size());
    if (!segments.ok()) return Fail(segments.status());
    for (const auto& [id, length] : segments.value()) {
      std::printf("    segment %2u  %10" PRIu64 " B\n", id, length);
    }
  }
  return 0;
}

int Verify(ArtifactStore& store) {
  Status status = store.VerifyAll();
  if (!status.ok()) return Fail(status);
  std::printf("ok: every committed file passes size, checksum, and "
              "structure checks\n");
  return 0;
}

int Gc(ArtifactStore& store) {
  Result<size_t> removed = store.GarbageCollect();
  if (!removed.ok()) return Fail(removed.status());
  std::printf("removed %zu orphan file(s)\n", removed.value());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: explain3d_store <inspect|verify|gc> <store-dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return Usage();
  const std::string command = argv[1];
  if (command != "inspect" && command != "verify" && command != "gc") {
    return Usage();
  }
  Result<ArtifactStore> store = ArtifactStore::Open(argv[2]);
  if (!store.ok()) return Fail(store.status());
  if (command == "inspect") return Inspect(store.value());
  if (command == "verify") return Verify(store.value());
  return Gc(store.value());
}
